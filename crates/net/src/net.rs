//! The network orchestrator: hosts, medium access (CSMA/CD) and CPU
//! dispatch, driven by the discrete-event simulation.

use std::collections::{BTreeSet, HashMap};

use amoeba_sim::{SimDuration, SimTime, Simulation, SplitMix64};
use serde::{Deserialize, Serialize};

use crate::chaos::{ChaosPlan, ChaosState, ChaosStats};
use crate::cpu::{Cpu, CpuPriority};
use crate::frame::{Frame, FrameDst, MacAddr, McastAddr};
use crate::medium::{Medium, MediumState};
use crate::nic::{Nic, TxState};

/// Identifies a host (station) on the simulated segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(pub usize);

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "host{}", self.0)
    }
}

/// Physical parameters of the simulated segment and interfaces.
///
/// The defaults ([`NetConfig::ether_10mbps`]) match the paper's testbed:
/// 10 Mbit/s Ethernet, 51.2 µs slot time, 9.6 µs inter-frame gap,
/// 1514-byte frames, Lance interfaces buffering 32 packets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Link speed in bits per second.
    pub bit_rate: u64,
    /// Collision window / backoff quantum.
    pub slot_time: SimDuration,
    /// Jam signal duration after a collision.
    pub jam_time: SimDuration,
    /// Mandatory quiet time between frames.
    pub inter_frame_gap: SimDuration,
    /// Maximum frame length on the wire including the link header.
    pub mtu: u32,
    /// Receive-ring capacity of each interface (Lance: 32).
    pub rx_ring_cap: usize,
    /// Transmission attempts before a frame is abandoned.
    pub max_attempts: u32,
}

impl NetConfig {
    /// The paper's network: 10 Mbit/s Ethernet with Lance interfaces.
    pub fn ether_10mbps() -> Self {
        NetConfig {
            bit_rate: 10_000_000,
            slot_time: SimDuration::from_micros(51),
            jam_time: SimDuration::from_micros(5),
            inter_frame_gap: SimDuration::from_micros(10),
            mtu: 1514,
            rx_ring_cap: 32,
            max_attempts: 16,
        }
    }

    /// Time to clock one frame onto the wire: preamble (8 B) + frame
    /// (padded to the 60-byte minimum) + FCS (4 B) at `bit_rate`.
    pub fn wire_time(&self, frame_len: u32) -> SimDuration {
        let bytes = 8 + u64::from(frame_len.max(60)) + 4;
        SimDuration::from_micros(bytes * 8 * 1_000_000 / self.bit_rate)
    }

    /// Largest payload carriable above a `header` -byte stack of headers.
    pub fn max_payload(&self, header: u32) -> u32 {
        self.mtu.saturating_sub(header)
    }
}

/// The embedding world's view of the network.
///
/// Implemented by the simulated Amoeba kernel (`amoeba-kernel`); the
/// network calls up when hardware events need software attention.
pub trait NetView: Sized + 'static {
    /// The logical contents of frames (never serialized in simulation).
    type Payload: Clone + 'static;

    /// Accessor for the network state within the world.
    fn net(&mut self) -> &mut Net<Self>;

    /// A frame landed in `host`'s receive ring. The kernel should charge
    /// receive-interrupt cost and drain with [`Nic::pop_rx`].
    fn on_frame_buffered(sim: &mut Simulation<Self>, host: HostId);

    /// A frame was dropped after exhausting its transmission attempts
    /// (16 collisions in a row). Default: ignore (protocol timers recover).
    fn on_tx_aborted(sim: &mut Simulation<Self>, host: HostId, frame: Frame<Self::Payload>) {
        let _ = (sim, host, frame);
    }
}

/// One simulated machine: a Lance NIC and a CPU.
pub struct Host<W: NetView> {
    /// This host's id (index on the segment).
    pub id: HostId,
    /// The network interface.
    pub nic: Nic<W::Payload>,
    /// The processor.
    pub cpu: Cpu<W>,
}

impl<W: NetView> std::fmt::Debug for Host<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Host").field("id", &self.id).field("cpu", &self.cpu).finish()
    }
}

/// The simulated network: a single shared segment plus its stations.
///
/// All mutation goes through associated functions taking the enclosing
/// [`Simulation`], because hardware activity (transmission end, backoff
/// expiry, CPU work completion) schedules future events.
pub struct Net<W: NetView> {
    /// Physical parameters.
    pub config: NetConfig,
    /// The shared wire.
    pub medium: Medium,
    hosts: Vec<Host<W>>,
    /// Hosts subscribed to each multicast address, ascending by id.
    /// Mirrors the per-NIC filters so the delivery fan-out is
    /// O(listeners) instead of a scan over every station — the scan is
    /// what made thousand-node worlds quadratic in the segment size.
    mcast_members: HashMap<McastAddr, Vec<HostId>>,
    /// Hosts with frames queued for transmission. Lets the idle-kick
    /// walk only the backlog instead of every station on the segment;
    /// `BTreeSet` keeps the kick order (ascending id) identical to the
    /// full scan it replaces.
    tx_backlog: BTreeSet<HostId>,
    rng_seed: SplitMix64,
    /// Installed fault schedule, if any ([`Net::set_chaos`]). `None`
    /// (the default) leaves the delivery path byte-identical to the
    /// fault-free simulator.
    chaos: Option<ChaosState>,
}

impl<W: NetView> std::fmt::Debug for Net<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Net")
            .field("config", &self.config)
            .field("hosts", &self.hosts.len())
            .field("medium", &self.medium)
            .finish()
    }
}

impl<W: NetView> Net<W> {
    /// Creates an empty segment. `seed` drives per-NIC backoff draws.
    pub fn new(config: NetConfig, seed: u64) -> Self {
        Net {
            config,
            medium: Medium::new(),
            hosts: Vec::new(),
            mcast_members: HashMap::new(),
            tx_backlog: BTreeSet::new(),
            rng_seed: SplitMix64::new(seed),
            chaos: None,
        }
    }

    /// Installs a deterministic fault schedule on the delivery path
    /// (see [`ChaosPlan`]). `seed` roots the decorrelated per-link
    /// randomness; the same `(plan, seed)` pair replays bit-exactly.
    pub fn set_chaos(&mut self, plan: ChaosPlan, seed: u64) {
        self.chaos = Some(ChaosState::new(plan, seed));
    }

    /// Removes the fault schedule (subsequent deliveries are perfect).
    pub fn clear_chaos(&mut self) {
        self.chaos = None;
    }

    /// What the chaos layer has done so far (zeroes with no plan).
    pub fn chaos_stats(&self) -> ChaosStats {
        self.chaos.as_ref().map(|c| c.stats).unwrap_or_default()
    }

    /// Attaches a new host to the segment and returns its id.
    pub fn add_host(&mut self) -> HostId {
        let id = HostId(self.hosts.len());
        let nic = Nic::new(
            MacAddr(id.0 as u16),
            self.config.rx_ring_cap,
            self.rng_seed.fork(id.0 as u64 + 1),
        );
        self.hosts.push(Host { id, nic, cpu: Cpu::new() });
        id
    }

    /// The number of attached hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Immutable access to a host.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`Net::add_host`].
    pub fn host(&self, id: HostId) -> &Host<W> {
        &self.hosts[id.0]
    }

    /// Mutable access to a host.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`Net::add_host`].
    pub fn host_mut(&mut self, id: HostId) -> &mut Host<W> {
        &mut self.hosts[id.0]
    }

    /// Iterates over all hosts.
    pub fn hosts(&self) -> impl Iterator<Item = &Host<W>> {
        self.hosts.iter()
    }

    /// Subscribes `host` to `group`: programs the NIC filter and the
    /// segment-wide membership index the delivery fan-out reads. Always
    /// use this (not [`Nic::join_multicast`] directly) on an attached
    /// NIC, or multicast frames will miss the host.
    pub fn join_multicast(&mut self, host: HostId, group: McastAddr) {
        self.hosts[host.0].nic.join_multicast(group);
        let members = self.mcast_members.entry(group).or_default();
        if let Err(i) = members.binary_search(&host) {
            members.insert(i, host);
        }
    }

    /// Unsubscribes `host` from `group` (filter and index).
    pub fn leave_multicast(&mut self, host: HostId, group: McastAddr) {
        self.hosts[host.0].nic.leave_multicast(group);
        if let Some(members) = self.mcast_members.get_mut(&group) {
            if let Ok(i) = members.binary_search(&host) {
                members.remove(i);
            }
            if members.is_empty() {
                self.mcast_members.remove(&group);
            }
        }
    }

    // ------------------------------------------------------------------
    // Transmit path (CSMA/CD)
    // ------------------------------------------------------------------

    /// Queues `frame` for transmission from `host`. The source MAC is
    /// overwritten with the host's own address.
    pub fn send_frame(sim: &mut Simulation<W>, host: HostId, mut frame: Frame<W::Payload>) {
        let net = sim.world.net();
        assert!(
            frame.wire_len <= net.config.mtu,
            "frame of {} bytes exceeds the {}-byte MTU; fragment in FLIP first",
            frame.wire_len,
            net.config.mtu
        );
        frame.src = net.hosts[host.0].nic.mac;
        net.hosts[host.0].nic.tx_queue.push_back(frame);
        net.tx_backlog.insert(host);
        Self::try_start_tx(sim, host);
    }

    /// Attempts to put `host`'s head-of-queue frame on the wire.
    fn try_start_tx(sim: &mut Simulation<W>, host: HostId) {
        let now = sim.now();
        let (window, state) = {
            let net = sim.world.net();
            let nic = &net.hosts[host.0].nic;
            if nic.tx_state != TxState::Idle || nic.tx_queue.is_empty() {
                return;
            }
            (net.config.slot_time, net.medium.state)
        };
        match state {
            MediumState::Idle => Self::begin_tx(sim, host),
            MediumState::Busy { station, start } if now < start + window => {
                Self::collide(sim, host, station);
            }
            MediumState::Busy { .. } | MediumState::Jamming | MediumState::InterFrameGap => {
                let net = sim.world.net();
                net.hosts[host.0].nic.tx_state = TxState::Deferring;
                net.medium.deferring.push(host);
            }
        }
    }

    fn begin_tx(sim: &mut Simulation<W>, host: HostId) {
        let now = sim.now();
        let dur = {
            let net = sim.world.net();
            let wire_len =
                net.hosts[host.0].nic.tx_queue.front().expect("queue checked nonempty").wire_len;
            net.hosts[host.0].nic.tx_state = TxState::Transmitting;
            net.medium.state = MediumState::Busy { station: host, start: now };
            net.config.wire_time(wire_len)
        };
        let end = sim.schedule_in(dur, move |sim| Self::finish_tx(sim, host));
        sim.world.net().medium.end_event = Some(end);
    }

    /// Two stations' transmissions overlapped inside the collision
    /// window: destroy the frame in flight, jam, and back both off.
    fn collide(sim: &mut Simulation<W>, attacker: HostId, victim: HostId) {
        let (jam, end_event) = {
            let net = sim.world.net();
            net.medium.stats.collisions += 1;
            net.medium.stats.collision_us += net.config.jam_time.as_micros();
            net.medium.state = MediumState::Jamming;
            (net.config.jam_time, net.medium.end_event.take())
        };
        if let Some(ev) = end_event {
            sim.cancel(ev);
        }
        sim.schedule_in(jam, Self::medium_idle);
        Self::apply_backoff(sim, victim);
        Self::apply_backoff(sim, attacker);
    }

    fn apply_backoff(sim: &mut Simulation<W>, host: HostId) {
        let (max_attempts, slot, jam) = {
            let c = sim.world.net().config;
            (c.max_attempts, c.slot_time, c.jam_time)
        };
        let aborted = {
            let nic = &mut sim.world.net().hosts[host.0].nic;
            nic.stats.collisions += 1;
            nic.attempts += 1;
            if nic.attempts > max_attempts {
                nic.attempts = 0;
                nic.stats.tx_aborted += 1;
                nic.tx_state = TxState::Idle;
                nic.tx_queue.pop_front()
            } else {
                nic.tx_state = TxState::BackingOff;
                None
            }
        };
        if let Some(frame) = aborted {
            if sim.world.net().hosts[host.0].nic.tx_queue.is_empty() {
                sim.world.net().tx_backlog.remove(&host);
            }
            W::on_tx_aborted(sim, host, frame);
            // The next queued frame (if any) gets a fresh chance once the
            // medium idles; register interest via the deferral list.
            let net = sim.world.net();
            if !net.hosts[host.0].nic.tx_queue.is_empty() {
                net.hosts[host.0].nic.tx_state = TxState::Deferring;
                net.medium.deferring.push(host);
            }
            return;
        }
        let slots = sim.world.net().hosts[host.0].nic.backoff_slots();
        let delay = jam + slot.saturating_mul(slots);
        sim.schedule_in(delay, move |sim| {
            let nic = &mut sim.world.net().hosts[host.0].nic;
            if nic.tx_state == TxState::BackingOff {
                nic.tx_state = TxState::Idle;
                Self::try_start_tx(sim, host);
            }
        });
    }

    /// A frame finished without collision: deliver it and free the wire.
    fn finish_tx(sim: &mut Simulation<W>, host: HostId) {
        let (frame, ifg) = {
            let net = sim.world.net();
            net.medium.end_event = None;
            let nic = &mut net.hosts[host.0].nic;
            let frame = nic.tx_queue.pop_front().expect("transmitting NIC owns head frame");
            nic.tx_state = TxState::Idle;
            nic.attempts = 0;
            nic.stats.tx_frames += 1;
            if net.hosts[host.0].nic.tx_queue.is_empty() {
                net.tx_backlog.remove(&host);
            }
            net.medium.stats.frames += 1;
            net.medium.stats.busy_us += net.config.wire_time(frame.wire_len).as_micros();
            net.medium.state = MediumState::InterFrameGap;
            (frame, net.config.inter_frame_gap)
        };
        sim.schedule_in(ifg, Self::medium_idle);
        Self::deliver(sim, frame);
    }

    /// Copies the frame into every matching receive ring, raising
    /// [`NetView::on_frame_buffered`] per successful buffering. With a
    /// [`ChaosPlan`] installed, each `(frame, receiver)` pair is judged
    /// independently — one multicast can reach some members and not
    /// others, the failure mode the negative-acknowledgement scheme
    /// exists to fix.
    fn deliver(sim: &mut Simulation<W>, frame: Frame<W::Payload>) {
        // Receiver resolution is indexed — O(listeners), not a scan of
        // the segment — but always yields ascending host order, exactly
        // like the scan it replaced (delivery order is observable
        // through chaos-delayed event sequence numbers).
        let receivers: Vec<HostId> = {
            let net = &*sim.world.net();
            match frame.dst {
                // MACs are host indices by construction (`add_host`).
                FrameDst::Unicast(mac) => net
                    .hosts
                    .get(mac.0 as usize)
                    .filter(|h| h.nic.mac != frame.src)
                    .map(|h| vec![h.id])
                    .unwrap_or_default(),
                FrameDst::Multicast(group) => net
                    .mcast_members
                    .get(&group)
                    .map(|members| {
                        members
                            .iter()
                            .copied()
                            .filter(|h| net.hosts[h.0].nic.mac != frame.src)
                            .collect()
                    })
                    .unwrap_or_default(),
                FrameDst::Broadcast => net
                    .hosts
                    .iter()
                    .filter(|h| h.nic.mac != frame.src)
                    .map(|h| h.id)
                    .collect(),
            }
        };
        let src = frame.src.0 as usize;
        for r in receivers {
            let now = sim.now();
            let Some(chaos) = sim.world.net().chaos.as_mut() else {
                Self::deliver_to(sim, r, frame.clone());
                continue;
            };
            let verdict = chaos.judge(now, src, r.0);
            for _ in 0..verdict.immediate {
                Self::deliver_to(sim, r, frame.clone());
            }
            if let Some((copies, delay_us)) = verdict.delayed {
                for _ in 0..copies {
                    let late = frame.clone();
                    sim.schedule_in(SimDuration::from_micros(delay_us), move |sim| {
                        Self::deliver_to(sim, r, late);
                    });
                }
            }
        }
    }

    /// Buffers one frame copy at `host`'s NIC (the tail of the wire).
    fn deliver_to(sim: &mut Simulation<W>, host: HostId, frame: Frame<W::Payload>) {
        let buffered = sim.world.net().hosts[host.0].nic.rx_accept(frame);
        if buffered {
            W::on_frame_buffered(sim, host);
        }
    }

    /// The wire went quiet: kick every station with pending traffic.
    /// Each station restarts after a small random offset (under one
    /// slot time) — stations that pick the same slot still collide, so
    /// a saturated segment stays contention-limited (the paper's ~61 %
    /// utilization), but two lightly loaded stations don't collide on
    /// *every* idle transition as a naive simultaneous restart would.
    fn medium_idle(sim: &mut Simulation<W>) {
        let kick: Vec<HostId> = {
            let net = sim.world.net();
            net.medium.state = MediumState::Idle;
            let mut kick = std::mem::take(&mut net.medium.deferring);
            for host in &kick {
                let nic = &mut net.hosts[host.0].nic;
                if nic.tx_state == TxState::Deferring {
                    nic.tx_state = TxState::Idle;
                }
            }
            // Also wake stations that finished a frame and have more
            // queued — the backlog set, in ascending id order like the
            // full-segment scan this replaced.
            for &h in &net.tx_backlog {
                let nic = &net.hosts[h.0].nic;
                if nic.tx_state == TxState::Idle && !nic.tx_queue.is_empty() && !kick.contains(&h) {
                    kick.push(h);
                }
            }
            kick
        };
        for host in kick {
            let jitter = {
                let net = sim.world.net();
                let slot = net.config.slot_time.as_micros();
                SimDuration::from_micros(net.hosts[host.0].nic.rng.gen_range(slot.max(1)))
            };
            sim.schedule_in(jitter, move |sim| Self::try_start_tx(sim, host));
        }
    }

    // ------------------------------------------------------------------
    // CPU dispatch
    // ------------------------------------------------------------------

    /// Runs `work` on `host`'s CPU: it occupies the CPU for `cost`, then
    /// `work` executes (at completion time) and the next queued item
    /// starts. Higher [`CpuPriority`] work runs first; equal priorities
    /// run FIFO.
    pub fn cpu_run(
        sim: &mut Simulation<W>,
        host: HostId,
        prio: CpuPriority,
        cost: SimDuration,
        work: impl FnOnce(&mut Simulation<W>) + 'static,
    ) {
        let cpu = &mut sim.world.net().hosts[host.0].cpu;
        if cpu.busy {
            cpu.enqueue(prio, cost, Box::new(work));
        } else {
            cpu.busy = true;
            Self::execute(sim, host, cost, Box::new(work));
        }
    }

    fn execute(
        sim: &mut Simulation<W>,
        host: HostId,
        cost: SimDuration,
        work: crate::cpu::WorkFn<W>,
    ) {
        {
            let cpu = &mut sim.world.net().hosts[host.0].cpu;
            cpu.stats.busy_us += cost.as_micros();
            cpu.stats.jobs += 1;
        }
        sim.schedule_in(cost, move |sim| {
            work(sim);
            Self::cpu_complete(sim, host);
        });
    }

    fn cpu_complete(sim: &mut Simulation<W>, host: HostId) {
        let next = sim.world.net().hosts[host.0].cpu.queue.pop();
        match next {
            Some(w) => Self::execute(sim, host, w.cost, w.run),
            None => sim.world.net().hosts[host.0].cpu.busy = false,
        }
    }

    /// Total elapsed-time utilization of the wire since simulation start.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.medium.stats.utilization(now - SimTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::McastAddr;
    use amoeba_sim::Simulation;

    struct World {
        net: Net<World>,
        received: Vec<(HostId, u32)>,
        aborted: usize,
    }

    impl NetView for World {
        type Payload = u32;
        fn net(&mut self) -> &mut Net<World> {
            &mut self.net
        }
        fn on_frame_buffered(sim: &mut Simulation<World>, host: HostId) {
            while let Some(f) = sim.world.net.host_mut(host).nic.pop_rx() {
                sim.world.received.push((host, f.payload));
            }
        }
        fn on_tx_aborted(sim: &mut Simulation<World>, _host: HostId, _frame: Frame<u32>) {
            sim.world.aborted += 1;
        }
    }

    fn world(hosts: usize) -> Simulation<World> {
        let mut net = Net::new(NetConfig::ether_10mbps(), 7);
        for _ in 0..hosts {
            net.add_host();
        }
        Simulation::new(World { net, received: vec![], aborted: 0 }, 7)
    }

    #[test]
    fn unicast_reaches_only_target() {
        let mut sim = world(3);
        Net::send_frame(&mut sim, HostId(0), Frame::unicast(HostId(0), HostId(2), 116, 5));
        sim.run();
        assert_eq!(sim.world.received, vec![(HostId(2), 5)]);
    }

    #[test]
    fn broadcast_reaches_everyone_but_sender() {
        let mut sim = world(4);
        Net::send_frame(&mut sim, HostId(1), Frame::broadcast(HostId(1), 116, 9));
        sim.run();
        let mut hosts: Vec<usize> = sim.world.received.iter().map(|(h, _)| h.0).collect();
        hosts.sort_unstable();
        assert_eq!(hosts, vec![0, 2, 3]);
    }

    #[test]
    fn multicast_respects_filters() {
        let mut sim = world(4);
        let g = McastAddr(1);
        sim.world.net.join_multicast(HostId(2), g);
        sim.world.net.join_multicast(HostId(3), g);
        Net::send_frame(&mut sim, HostId(0), Frame::multicast(HostId(0), g, 116, 1));
        sim.run();
        let mut hosts: Vec<usize> = sim.world.received.iter().map(|(h, _)| h.0).collect();
        hosts.sort_unstable();
        assert_eq!(hosts, vec![2, 3]);
    }

    #[test]
    fn wire_time_matches_10mbps() {
        let c = NetConfig::ether_10mbps();
        // 116-byte frame: 8 + 116 + 4 = 128 bytes = 1024 bits at 10 Mbps
        // = 102.4 us, truncated to 102.
        assert_eq!(c.wire_time(116), SimDuration::from_micros(102));
        // Minimum frame padding applies below 60 bytes.
        assert_eq!(c.wire_time(10), c.wire_time(60));
    }

    #[test]
    fn sender_drains_queue_back_to_back() {
        let mut sim = world(2);
        for i in 0..5 {
            Net::send_frame(&mut sim, HostId(0), Frame::unicast(HostId(0), HostId(1), 1000, i));
        }
        sim.run();
        let payloads: Vec<u32> = sim.world.received.iter().map(|(_, p)| *p).collect();
        assert_eq!(payloads, vec![0, 1, 2, 3, 4], "frames arrive in order");
        assert_eq!(sim.world.net.host(HostId(0)).nic.stats.tx_frames, 5);
    }

    #[test]
    fn contending_senders_collide_then_both_deliver() {
        let mut sim = world(3);
        // Two stations transmit "simultaneously": both frames must still
        // arrive (after collisions and backoff).
        Net::send_frame(&mut sim, HostId(0), Frame::unicast(HostId(0), HostId(2), 500, 100));
        Net::send_frame(&mut sim, HostId(1), Frame::unicast(HostId(1), HostId(2), 500, 200));
        sim.run();
        let mut payloads: Vec<u32> = sim.world.received.iter().map(|(_, p)| *p).collect();
        payloads.sort_unstable();
        assert_eq!(payloads, vec![100, 200]);
        assert!(sim.world.net.medium.stats.collisions >= 1, "simultaneous start must collide");
        assert_eq!(sim.world.aborted, 0);
    }

    #[test]
    fn heavy_contention_still_delivers_everything() {
        let mut sim = world(10);
        let mut expected = 0;
        for h in 0..9 {
            for i in 0..20 {
                Net::send_frame(
                    &mut sim,
                    HostId(h),
                    Frame::unicast(HostId(h), HostId(9), 200, (h * 100 + i) as u32),
                );
                expected += 1;
            }
        }
        sim.run();
        assert_eq!(sim.world.received.len(), expected);
        assert!(sim.world.net.medium.stats.collisions > 0);
    }

    #[test]
    fn rx_ring_overflow_drops_frames() {
        let mut sim = world(2);
        // Make the receiver's CPU never drain by using a tiny ring and
        // many frames: on_frame_buffered drains here, so instead fill the
        // ring directly to verify drop accounting at the NIC level.
        let receiver = HostId(1);
        for i in 0..40 {
            let f = Frame::unicast(HostId(0), receiver, 116, i);
            sim.world.net.host_mut(receiver).nic.rx_accept(f);
        }
        let stats = sim.world.net.host(receiver).nic.stats;
        assert_eq!(stats.rx_frames, 32, "Lance buffers exactly 32");
        assert_eq!(stats.rx_overflow, 8);
    }

    #[test]
    fn medium_tracks_utilization() {
        let mut sim = world(2);
        Net::send_frame(&mut sim, HostId(0), Frame::unicast(HostId(0), HostId(1), 1000, 1));
        sim.run();
        let stats = sim.world.net.medium.stats;
        assert_eq!(stats.frames, 1);
        assert_eq!(stats.busy_us, NetConfig::ether_10mbps().wire_time(1000).as_micros());
    }

    #[test]
    fn cpu_runs_by_priority_and_charges_time() {
        let mut sim = world(1);
        let h = HostId(0);
        // Submit user work first; while it runs, queue interrupt + user.
        Net::cpu_run(&mut sim, h, CpuPriority::User, SimDuration::from_micros(100), |sim| {
            sim.world.received.push((HostId(0), 1));
        });
        Net::cpu_run(&mut sim, h, CpuPriority::User, SimDuration::from_micros(100), |sim| {
            sim.world.received.push((HostId(0), 3));
        });
        Net::cpu_run(&mut sim, h, CpuPriority::Interrupt, SimDuration::from_micros(50), |sim| {
            sim.world.received.push((HostId(0), 2));
        });
        sim.run();
        let order: Vec<u32> = sim.world.received.iter().map(|(_, p)| *p).collect();
        assert_eq!(order, vec![1, 2, 3], "running job finishes; interrupt preempts queue order");
        assert_eq!(sim.world.net.host(h).cpu.stats.busy_us, 250);
        assert_eq!(sim.world.net.host(h).cpu.stats.jobs, 3);
        assert_eq!(sim.now(), amoeba_sim::SimTime::from_micros(250));
    }

    #[test]
    #[should_panic(expected = "exceeds the 1514-byte MTU")]
    fn oversized_frame_panics() {
        let mut sim = world(2);
        Net::send_frame(&mut sim, HostId(0), Frame::unicast(HostId(0), HostId(1), 3000, 0));
    }

    #[test]
    fn chaos_partition_cuts_and_heals() {
        use crate::chaos::{ChaosPlan, HostSet, LinkFaults, Partition};
        let mut sim = world(3);
        // Host 2 is cut off from hosts 0 and 1 until t = 2000 µs.
        sim.world.net.set_chaos(
            ChaosPlan {
                link: LinkFaults::none(),
                noise_from_us: 0,
                noise_until_us: 0,
                partitions: vec![Partition {
                    side_a: HostSet::from_mask(0b100),
                    from_us: 0,
                    until_us: 2_000,
                }],
            },
            1,
        );
        Net::send_frame(&mut sim, HostId(0), Frame::broadcast(HostId(0), 116, 1));
        sim.run_until(amoeba_sim::SimTime::from_micros(2_000));
        assert_eq!(sim.world.received, vec![(HostId(1), 1)], "host 2 is partitioned away");
        assert_eq!(sim.world.net.chaos_stats().partitioned, 1);
        // After the heal, everything flows again.
        Net::send_frame(&mut sim, HostId(0), Frame::broadcast(HostId(0), 116, 2));
        sim.run();
        let mut got = sim.world.received.clone();
        got.sort_unstable_by_key(|(h, p)| (*p, h.0));
        assert_eq!(
            got,
            vec![(HostId(1), 1), (HostId(1), 2), (HostId(2), 2)],
            "post-heal broadcast reaches everyone"
        );
    }

    #[test]
    fn chaos_duplication_is_judged_per_receiver() {
        use crate::chaos::{ChaosPlan, LinkFaults};
        let mut sim = world(3);
        // Full-probability duplication: every receiver of the
        // broadcast gets two copies, each link judged on its own.
        sim.world.net.set_chaos(
            ChaosPlan {
                link: LinkFaults { duplicate: 1.0, ..LinkFaults::none() },
                noise_from_us: 0,
                noise_until_us: u64::MAX,
                partitions: Vec::new(),
            },
            5,
        );
        Net::send_frame(&mut sim, HostId(0), Frame::broadcast(HostId(0), 116, 7));
        sim.run();
        assert_eq!(sim.world.received.len(), 4, "both receivers get two copies");
        assert_eq!(sim.world.net.chaos_stats().duplicated, 2);
    }

    #[test]
    fn chaos_reorder_delays_past_later_frames() {
        use crate::chaos::{ChaosPlan, LinkFaults};
        let mut sim = world(2);
        let mut plan = ChaosPlan::quiet();
        plan.link = LinkFaults {
            drop: 0.0,
            duplicate: 0.0,
            reorder: 1.0,
            reorder_min_us: 50_000,
            reorder_max_us: 50_000,
        };
        plan.noise_until_us = 150; // only the first frame is judged inside the window
        sim.world.net.set_chaos(plan, 2);
        // Queued back to back: frame 1 lands inside the noise window and
        // is delayed 50 ms; frame 2 lands after it and passes through.
        Net::send_frame(&mut sim, HostId(0), Frame::unicast(HostId(0), HostId(1), 116, 1));
        Net::send_frame(&mut sim, HostId(0), Frame::unicast(HostId(0), HostId(1), 116, 2));
        sim.run();
        let payloads: Vec<u32> = sim.world.received.iter().map(|(_, p)| *p).collect();
        assert_eq!(payloads, vec![2, 1], "the delayed copy arrives after the later frame");
        assert_eq!(sim.world.net.chaos_stats().reordered, 1);
    }

    #[test]
    fn chaos_off_is_the_default_and_clear_restores_it() {
        let mut sim = world(2);
        assert_eq!(sim.world.net.chaos_stats(), crate::chaos::ChaosStats::default());
        sim.world.net.set_chaos(
            crate::chaos::ChaosPlan {
                link: crate::chaos::LinkFaults { drop: 1.0, ..crate::chaos::LinkFaults::none() },
                noise_from_us: 0,
                noise_until_us: u64::MAX,
                partitions: Vec::new(),
            },
            1,
        );
        Net::send_frame(&mut sim, HostId(0), Frame::unicast(HostId(0), HostId(1), 116, 1));
        sim.run();
        assert!(sim.world.received.is_empty());
        sim.world.net.clear_chaos();
        Net::send_frame(&mut sim, HostId(0), Frame::unicast(HostId(0), HostId(1), 116, 2));
        sim.run();
        assert_eq!(sim.world.received, vec![(HostId(1), 2)]);
    }

    #[test]
    fn deterministic_under_seed() {
        fn run(seed: u64) -> Vec<(HostId, u32)> {
            let mut net = Net::new(NetConfig::ether_10mbps(), seed);
            for _ in 0..5 {
                net.add_host();
            }
            let mut sim = Simulation::new(World { net, received: vec![], aborted: 0 }, seed);
            for h in 0..4 {
                for i in 0..10 {
                    Net::send_frame(
                        &mut sim,
                        HostId(h),
                        Frame::unicast(HostId(h), HostId(4), 300, (h * 10 + i) as u32),
                    );
                }
            }
            sim.run();
            sim.world.received
        }
        assert_eq!(run(3), run(3));
    }
}
