//! Simulated network hardware: a shared 10 Mbit/s Ethernet segment with
//! CSMA/CD, Lance-style network interfaces with a bounded receive ring,
//! and a per-host CPU model.
//!
//! This crate reproduces the testbed of Kaashoek & Tanenbaum's ICDCS '96
//! evaluation: 30 hosts on one Ethernet, each with a Lance interface able
//! to buffer 32 packets before dropping, 1514-byte frames, collisions and
//! exponential backoff among uncoordinated senders. Those hardware
//! details are *load-bearing* for the paper's results — the 4-Kbyte
//! throughput collapse comes from the 32-slot ring, and the multi-group
//! aggregate limit (~61 % utilization) comes from CSMA/CD contention — so
//! they are modelled explicitly rather than abstracted away. The
//! stack's layer map is DESIGN.md §1 and the simulated driver built on
//! this crate is DESIGN.md §3 (repository root).
//!
//! Beyond the simulated hardware, this crate also owns the *real*
//! datagram fabric of the stack: the [`Transport`] trait the live
//! runtime drives (implemented in-memory by `amoeba_runtime::LiveNet`)
//! and its inter-process implementation [`UdpNet`], which carries the
//! existing wire format over `std::net::UdpSocket`s between OS
//! processes (DESIGN.md §12).
//!
//! # Architecture
//!
//! The crate plugs into the [`amoeba_sim::Simulation`] event loop via the
//! [`NetView`] trait: the embedding world (the simulated Amoeba kernel in
//! `amoeba-kernel`) exposes its [`Net`] and receives upcalls when a frame
//! lands in a receive ring or a transmission is abandoned. Frames carry a
//! logical payload type chosen by the embedder; only the *wire length* is
//! simulated, never byte serialization.
//!
//! # Example
//!
//! ```
//! use amoeba_sim::Simulation;
//! use amoeba_net::{Frame, Net, NetConfig, NetView, HostId};
//!
//! struct World {
//!     net: Net<World>,
//!     received: Vec<(HostId, &'static str)>,
//! }
//! impl NetView for World {
//!     type Payload = &'static str;
//!     fn net(&mut self) -> &mut Net<World> { &mut self.net }
//!     fn on_frame_buffered(sim: &mut Simulation<World>, host: HostId) {
//!         // A real kernel would charge interrupt cost; tests just drain.
//!         while let Some(frame) = sim.world.net.host_mut(host).nic.pop_rx() {
//!             sim.world.received.push((host, frame.payload));
//!         }
//!     }
//! }
//!
//! let mut net = Net::new(NetConfig::ether_10mbps(), 42);
//! let a = net.add_host();
//! let b = net.add_host();
//! let mut sim = Simulation::new(World { net, received: vec![] }, 42);
//! let frame = Frame::unicast(a, b, 116, "hello");
//! Net::send_frame(&mut sim, a, frame);
//! sim.run();
//! assert_eq!(sim.world.received, vec![(b, "hello")]);
//! ```

mod chaos;
mod cpu;
mod frame;
mod medium;
mod net;
mod nic;
pub mod transport;
mod udp;

pub use chaos::{ChaosPlan, ChaosStats, HostSet, LinkFaults, Partition};
pub use cpu::{CpuPriority, CpuStats};
pub use frame::{Frame, FrameDst, MacAddr, McastAddr};
pub use medium::{MediumState, MediumStats};
pub use net::{Host, HostId, Net, NetConfig, NetView};
pub use nic::{Nic, NicStats};
pub use transport::{Datagram, Transport, TransportSender};
pub use udp::{UdpConfig, UdpNet, ENVELOPE_LEN, MAX_UDP_DATAGRAM};
