//! The shared CSMA/CD medium (classic 10 Mbit/s Ethernet).

use amoeba_sim::{EventId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::net::HostId;

/// What the medium is doing right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MediumState {
    /// Nobody is transmitting.
    Idle,
    /// One station is transmitting; a second attempt inside the collision
    /// window destroys the frame.
    Busy {
        /// The transmitting station.
        station: HostId,
        /// When the transmission started (collision window anchor).
        start: SimTime,
    },
    /// A collision happened; the jam signal is on the wire.
    Jamming,
    /// A transmission just ended; stations must wait out the inter-frame
    /// gap before starting.
    InterFrameGap,
}

/// Aggregate wire statistics, used for the utilization numbers of the
/// paper's Figure 6 (61 % Ethernet utilization at peak aggregate
/// throughput).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MediumStats {
    /// Microseconds the wire carried a (successful) transmission.
    pub busy_us: u64,
    /// Microseconds wasted on collisions and jam signals.
    pub collision_us: u64,
    /// Number of frames fully transmitted.
    pub frames: u64,
    /// Number of collision events.
    pub collisions: u64,
}

impl MediumStats {
    /// Fraction of `elapsed` during which the wire carried useful bits.
    pub fn utilization(&self, elapsed: SimDuration) -> f64 {
        if elapsed.as_micros() == 0 {
            return 0.0;
        }
        self.busy_us as f64 / elapsed.as_micros() as f64
    }
}

/// The shared-bus state machine. Driven by [`crate::Net`]; exposed for
/// inspection by experiments.
#[derive(Debug)]
pub struct Medium {
    pub(crate) state: MediumState,
    /// Stations that sensed carrier and are waiting for idle (1-persistent
    /// CSMA: they all retry the moment the wire goes quiet).
    pub(crate) deferring: Vec<HostId>,
    /// End-of-transmission event, cancelled if a collision destroys the
    /// frame in flight.
    pub(crate) end_event: Option<EventId>,
    /// Statistics.
    pub stats: MediumStats,
}

impl Medium {
    pub(crate) fn new() -> Self {
        Medium {
            state: MediumState::Idle,
            deferring: Vec::new(),
            end_event: None,
            stats: MediumStats::default(),
        }
    }

    /// The current medium state.
    pub fn state(&self) -> MediumState {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_is_busy_over_elapsed() {
        let stats = MediumStats { busy_us: 500_000, ..Default::default() };
        assert!((stats.utilization(SimDuration::from_secs(1)) - 0.5).abs() < 1e-9);
        assert_eq!(MediumStats::default().utilization(SimDuration::ZERO), 0.0);
    }
}
