//! The per-host CPU model.
//!
//! The paper's machines are 20-MHz MC68030s and the protocol's limits are
//! set by *message processing time* (its headline lesson #1), so CPU time
//! must be a simulated resource, not a constant. Each host has one CPU
//! executing prioritized, run-to-completion work items: interrupt work
//! (NIC receive/driver) beats kernel work (protocol processing), which
//! beats user work (application threads). True preemption is not
//! modelled — work items in this codebase are all well under a
//! millisecond, matching the granularity at which the Amoeba kernel
//! disabled interrupts anyway.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use amoeba_sim::{SimDuration, Simulation};
use serde::{Deserialize, Serialize};

/// Dispatch priority of a CPU work item (higher runs first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CpuPriority {
    /// Application threads (`SendToGroup` callers, receive loops).
    User = 0,
    /// Protocol processing in the kernel (group layer, FLIP).
    Kernel = 1,
    /// Interrupt service: NIC receive path, driver work.
    Interrupt = 2,
}

/// Per-CPU accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuStats {
    /// Total microseconds of work executed.
    pub busy_us: u64,
    /// Number of work items executed.
    pub jobs: u64,
}

/// A deferred work closure run when its CPU slot completes.
pub(crate) type WorkFn<W> = Box<dyn FnOnce(&mut Simulation<W>)>;

pub(crate) struct Work<W> {
    prio: CpuPriority,
    seq: u64,
    pub(crate) cost: SimDuration,
    pub(crate) run: WorkFn<W>,
}

impl<W> PartialEq for Work<W> {
    fn eq(&self, other: &Self) -> bool {
        self.prio == other.prio && self.seq == other.seq
    }
}
impl<W> Eq for Work<W> {}
impl<W> PartialOrd for Work<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Work<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: higher priority first, then FIFO (lower seq first).
        (self.prio, std::cmp::Reverse(self.seq)).cmp(&(other.prio, std::cmp::Reverse(other.seq)))
    }
}

/// One host's CPU: a priority queue of costed work items, executed
/// one at a time on the simulated clock.
pub struct Cpu<W> {
    pub(crate) busy: bool,
    pub(crate) queue: BinaryHeap<Work<W>>,
    pub(crate) next_seq: u64,
    /// Accounting.
    pub stats: CpuStats,
}

impl<W> Cpu<W> {
    pub(crate) fn new() -> Self {
        Cpu { busy: false, queue: BinaryHeap::new(), next_seq: 0, stats: CpuStats::default() }
    }

    /// Whether the CPU is currently executing a work item.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Number of queued (not yet started) work items.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    pub(crate) fn enqueue(
        &mut self,
        prio: CpuPriority,
        cost: SimDuration,
        run: WorkFn<W>,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Work { prio, seq, cost, run });
    }
}

impl<W> std::fmt::Debug for Cpu<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cpu")
            .field("busy", &self.busy)
            .field("queued", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_order_interrupt_first_then_fifo() {
        let mut cpu: Cpu<()> = Cpu::new();
        cpu.enqueue(CpuPriority::User, SimDuration::ZERO, Box::new(|_| {}));
        cpu.enqueue(CpuPriority::Interrupt, SimDuration::ZERO, Box::new(|_| {}));
        cpu.enqueue(CpuPriority::Kernel, SimDuration::ZERO, Box::new(|_| {}));
        cpu.enqueue(CpuPriority::Interrupt, SimDuration::ZERO, Box::new(|_| {}));
        let order: Vec<(CpuPriority, u64)> = std::iter::from_fn(|| {
            cpu.queue.pop().map(|w| (w.prio, w.seq))
        })
        .collect();
        assert_eq!(
            order,
            vec![
                (CpuPriority::Interrupt, 1),
                (CpuPriority::Interrupt, 3),
                (CpuPriority::Kernel, 2),
                (CpuPriority::User, 0),
            ]
        );
    }

    #[test]
    fn priorities_are_ordered() {
        assert!(CpuPriority::Interrupt > CpuPriority::Kernel);
        assert!(CpuPriority::Kernel > CpuPriority::User);
    }
}
