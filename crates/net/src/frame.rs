//! Ethernet frames, station addresses and multicast groups.

use serde::{Deserialize, Serialize};

use crate::net::HostId;

/// A station (MAC-level) address on the simulated segment.
///
/// One segment hosts at most a few dozen stations, so station addresses
/// are small indices assigned by [`crate::Net::add_host`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MacAddr(pub u16);

impl std::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mac:{:02x}", self.0)
    }
}

/// An Ethernet multicast group address.
///
/// NICs subscribe to multicast addresses with
/// [`crate::Nic::join_multicast`]; a multicast frame is delivered to every
/// subscribed station except the sender (the Lance does not loop back its
/// own transmissions — local delivery is the kernel's job, exactly as in
/// Amoeba).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct McastAddr(pub u32);

impl std::fmt::Display for McastAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mcast:{:04x}", self.0)
    }
}

/// The destination of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameDst {
    /// One station.
    Unicast(MacAddr),
    /// Every station subscribed to the group.
    Multicast(McastAddr),
    /// Every station on the segment.
    Broadcast,
}

/// A frame on the simulated wire.
///
/// `wire_len` is the Ethernet frame length in bytes **including** the
/// 14-byte Ethernet header (the paper's 116-byte null-message overhead
/// counts it); the preamble, FCS and minimum-frame padding are added by
/// the medium model when computing transmission time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame<P> {
    /// Sending station.
    pub src: MacAddr,
    /// Destination station(s).
    pub dst: FrameDst,
    /// Frame length on the wire in bytes, including link header.
    pub wire_len: u32,
    /// The logical contents; never serialized by the simulator.
    pub payload: P,
}

impl<P> Frame<P> {
    /// Builds a unicast frame between two hosts (using their station
    /// addresses, which equal their host ids on a single segment).
    pub fn unicast(src: HostId, dst: HostId, wire_len: u32, payload: P) -> Self {
        Frame {
            src: MacAddr(src.0 as u16),
            dst: FrameDst::Unicast(MacAddr(dst.0 as u16)),
            wire_len,
            payload,
        }
    }

    /// Builds a multicast frame from `src` to an Ethernet group.
    pub fn multicast(src: HostId, group: McastAddr, wire_len: u32, payload: P) -> Self {
        Frame {
            src: MacAddr(src.0 as u16),
            dst: FrameDst::Multicast(group),
            wire_len,
            payload,
        }
    }

    /// Builds a broadcast frame.
    pub fn broadcast(src: HostId, wire_len: u32, payload: P) -> Self {
        Frame {
            src: MacAddr(src.0 as u16),
            dst: FrameDst::Broadcast,
            wire_len,
            payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_addresses() {
        let f = Frame::unicast(HostId(1), HostId(2), 116, ());
        assert_eq!(f.src, MacAddr(1));
        assert_eq!(f.dst, FrameDst::Unicast(MacAddr(2)));

        let m = Frame::multicast(HostId(3), McastAddr(9), 200, ());
        assert_eq!(m.dst, FrameDst::Multicast(McastAddr(9)));

        let b = Frame::broadcast(HostId(0), 64, ());
        assert_eq!(b.dst, FrameDst::Broadcast);
    }

    #[test]
    fn displays_are_nonempty() {
        assert_eq!(MacAddr(7).to_string(), "mac:07");
        assert_eq!(McastAddr(16).to_string(), "mcast:0010");
    }
}
