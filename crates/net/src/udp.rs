//! The inter-process UDP fabric: real `std::net::UdpSocket`s carrying
//! the existing [`WireFrame`] encoding between OS processes.
//!
//! This is the third backend of the stack (DESIGN.md §12): where
//! `LiveNet` moves refcounted frame segments between threads, `UdpNet`
//! moves *bytes* between processes, reusing two layers that already
//! exist — the zero-copy frame codec of `amoeba-core` and the
//! fragmentation/reassembly of `amoeba-flip` — against a real datagram
//! ceiling instead of a simulated one.
//!
//! **Endpoints.** Each registered FLIP address owns one UDP socket
//! bound to 127.0.0.1 (or a port pre-bound via
//! [`UdpNet::bind_endpoint`] so a harness can exchange ports before
//! the protocol starts talking). Two threads serve it: a *receive
//! pump* that turns datagrams back into `(source, WireFrame)` pairs
//! for the unchanged driver loop, and a *send thread* that drains the
//! endpoint's queue batch-wise — one wake processes every frame queued
//! behind it, gather-encoding each fragment (envelope + head slice +
//! tail slice) into one reusable scratch buffer per `send_to`.
//!
//! **Peer table.** The authoritative registry (peer socket addresses,
//! local endpoints, local multicast subscriptions) lives behind one
//! mutex, but neither senders nor pumps ever take it: every mutation
//! publishes an immutable snapshot and bumps an epoch, and each thread
//! revalidates its cached `Arc` with a single atomic load — the same
//! discipline `LiveNet` established (DESIGN.md §7).
//!
//! **Multicast.** A real LAN would let the NIC filter multicast; over
//! unicast UDP we do the moral equivalent: a multicast send fans out
//! one copy per known peer (sender excluded, as on real hardware) with
//! the *group* address in the envelope, and the receiving pump drops
//! group traffic for groups its endpoint never joined. Remote group
//! membership is therefore not tracked at all — exactly like an
//! Ethernet, where the wire does not know who listens.
//!
//! **Copies.** The receive path performs exactly one userspace copy:
//! socket scratch → an exact-size refcounted buffer. Everything
//! downstream — envelope split, reassembly fast path, frame decode,
//! payload delivery — is a shared-ownership view of that buffer
//! (pinned by `decoded_body_shares_the_datagram_allocation` below).
//!
//! Delivery is best-effort by design: unknown peers, socket errors and
//! malformed datagrams drop silently, and the group protocol's
//! negative-acknowledgement machinery recovers, exactly as it does on
//! a lossy wire.

use std::collections::{HashMap, HashSet};
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use amoeba_core::{GroupId, WireFrame};
use amoeba_flip::{split_lens, FlipAddress, FragKey, Reassembler};
use bytes::Bytes;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::transport::{Datagram, Transport, TransportSender};

/// Wire envelope prefixed to every datagram: magic (2) + version (1) +
/// src (8) + dst (8) + msg id (8) + fragment index (2) + count (2).
pub const ENVELOPE_LEN: usize = 31;

/// Largest payload a UDP datagram can carry (IPv4, minus IP/UDP
/// headers). [`UdpConfig::max_datagram`] must stay at or below this.
pub const MAX_UDP_DATAGRAM: usize = 65_507;

const MAGIC: u16 = 0xA0EB;
const VERSION: u8 = 1;

/// The group tag bit of a raw FLIP address (see `amoeba_flip`): set in
/// an envelope's `dst` when the datagram is group traffic.
const GROUP_TAG: u64 = 1 << 63;

/// Tuning for the UDP fabric.
#[derive(Debug, Clone, Copy)]
pub struct UdpConfig {
    /// Datagram size ceiling, envelope included. Frames larger than
    /// `max_datagram - ENVELOPE_LEN` fragment via `amoeba-flip`. The
    /// default stays under [`MAX_UDP_DATAGRAM`] with margin; tests
    /// shrink it to force multi-fragment paths on small payloads.
    pub max_datagram: usize,
    /// Partial reassemblies older than this are purged (loss of one
    /// fragment must not leak the rest forever).
    pub purge_after: Duration,
}

impl Default for UdpConfig {
    fn default() -> Self {
        UdpConfig { max_datagram: 60_000, purge_after: Duration::from_secs(5) }
    }
}

struct Envelope {
    src: u64,
    dst: u64,
    msg_id: u64,
    index: u16,
    count: u16,
}

fn encode_envelope(out: &mut Vec<u8>, env: &Envelope) {
    out.extend_from_slice(&MAGIC.to_be_bytes());
    out.push(VERSION);
    out.extend_from_slice(&env.src.to_be_bytes());
    out.extend_from_slice(&env.dst.to_be_bytes());
    out.extend_from_slice(&env.msg_id.to_be_bytes());
    out.extend_from_slice(&env.index.to_be_bytes());
    out.extend_from_slice(&env.count.to_be_bytes());
}

/// Splits a received datagram into its envelope and body. The body is
/// a shared-ownership **view** of `datagram` (no copy). `None` on any
/// malformed input — wrong magic or version, truncation, impossible
/// fragment fields; a hostile or stray datagram must never panic the
/// pump.
fn split_envelope(datagram: &Bytes) -> Option<(Envelope, Bytes)> {
    if datagram.len() < ENVELOPE_LEN {
        return None;
    }
    let b = &datagram[..];
    if u16::from_be_bytes([b[0], b[1]]) != MAGIC || b[2] != VERSION {
        return None;
    }
    let u64_at = |i: usize| u64::from_be_bytes(b[i..i + 8].try_into().expect("8 bytes"));
    let env = Envelope {
        src: u64_at(3),
        dst: u64_at(11),
        msg_id: u64_at(19),
        index: u16::from_be_bytes([b[27], b[28]]),
        count: u16::from_be_bytes([b[29], b[30]]),
    };
    if env.count == 0 || env.index >= env.count {
        return None;
    }
    Some((env, datagram.slice(ENVELOPE_LEN..)))
}

/// Appends `frame`'s bytes in `[off, off + len)` to `out`, gathering
/// across the head/tail segment boundary without materializing a
/// contiguous frame.
fn gather_range(out: &mut Vec<u8>, frame: &WireFrame, off: usize, len: usize) {
    let head_len = frame.head.len();
    let end = off + len;
    if off < head_len {
        out.extend_from_slice(&frame.head[off..end.min(head_len)]);
    }
    if end > head_len {
        let tail = frame.tail.as_ref().expect("range extends past head");
        out.extend_from_slice(&tail[off.saturating_sub(head_len)..end - head_len]);
    }
}

/// What a [`UdpSender`] hands its endpoint's send thread.
enum SendItem {
    Unicast(FlipAddress, WireFrame),
    Multicast(GroupId, WireFrame),
}

/// Immutable registry copy that pumps and send threads read lock-free.
struct Snapshot {
    peers: HashMap<FlipAddress, SocketAddr>,
    /// *Local* multicast subscriptions only (see module docs).
    groups: HashMap<GroupId, HashSet<FlipAddress>>,
}

impl Snapshot {
    fn empty() -> Self {
        Snapshot { peers: HashMap::new(), groups: HashMap::new() }
    }
}

/// The published snapshot plus its epoch — shared by the fabric and
/// every endpoint thread (a separate `Arc` so threads never keep the
/// fabric itself alive).
struct Published {
    epoch: AtomicU64,
    snap: Mutex<Arc<Snapshot>>,
}

/// A thread's epoch-tagged snapshot handle: one atomic load per use,
/// the mutex touched only when membership actually changed.
struct Cache {
    epoch: u64,
    snap: Arc<Snapshot>,
}

impl Cache {
    fn new() -> Self {
        Cache { epoch: 0, snap: Arc::new(Snapshot::empty()) }
    }

    fn refresh(&mut self, published: &Published) {
        let now = published.epoch.load(Ordering::Acquire);
        if self.epoch != now {
            self.epoch = now;
            self.snap = Arc::clone(&published.snap.lock());
        }
    }
}

/// One registered endpoint's server-side state.
struct Endpoint {
    queue: Sender<SendItem>,
    shutdown: Arc<AtomicBool>,
}

/// Authoritative state, mutated under its mutex.
struct Registry {
    peers: HashMap<FlipAddress, SocketAddr>,
    groups: HashMap<GroupId, HashSet<FlipAddress>>,
    local: HashMap<FlipAddress, Endpoint>,
    /// Sockets bound ahead of registration (port exchange).
    prebound: HashMap<FlipAddress, Arc<UdpSocket>>,
}

/// The inter-process UDP datagram fabric. See the module docs.
pub struct UdpNet {
    cfg: UdpConfig,
    registry: Mutex<Registry>,
    published: Arc<Published>,
}

impl std::fmt::Debug for UdpNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let reg = self.registry.lock();
        f.debug_struct("UdpNet")
            .field("peers", &reg.peers.len())
            .field("local", &reg.local.len())
            .field("max_datagram", &self.cfg.max_datagram)
            .finish()
    }
}

impl UdpNet {
    /// Creates a fabric with the given tuning.
    ///
    /// # Panics
    ///
    /// Panics if `max_datagram` leaves no room for a fragment body or
    /// exceeds what UDP can carry.
    pub fn new(cfg: UdpConfig) -> Arc<Self> {
        assert!(
            cfg.max_datagram > ENVELOPE_LEN && cfg.max_datagram <= MAX_UDP_DATAGRAM,
            "max_datagram must be in ({ENVELOPE_LEN}, {MAX_UDP_DATAGRAM}]"
        );
        Arc::new(UdpNet {
            cfg,
            registry: Mutex::new(Registry {
                peers: HashMap::new(),
                groups: HashMap::new(),
                local: HashMap::new(),
                prebound: HashMap::new(),
            }),
            published: Arc::new(Published {
                epoch: AtomicU64::new(1),
                snap: Mutex::new(Arc::new(Snapshot::empty())),
            }),
        })
    }

    /// Rebuilds and publishes the snapshot from the (locked) registry.
    fn publish(&self, reg: &Registry) {
        let snap = Arc::new(Snapshot { peers: reg.peers.clone(), groups: reg.groups.clone() });
        *self.published.snap.lock() = snap;
        self.published.epoch.fetch_add(1, Ordering::Release);
    }

    /// Binds `addr`'s socket ahead of registration and returns the OS
    /// port, so a multi-process harness can exchange ports before any
    /// endpoint starts the protocol. A later [`Transport::register`]
    /// of the same address adopts this socket.
    ///
    /// # Errors
    ///
    /// The underlying bind error, if the OS refuses a loopback socket.
    pub fn bind_endpoint(&self, addr: FlipAddress) -> io::Result<SocketAddr> {
        let sock = Arc::new(UdpSocket::bind(("127.0.0.1", 0))?);
        let local = sock.local_addr()?;
        self.registry.lock().prebound.insert(addr, sock);
        Ok(local)
    }

    /// Records where a *remote* peer (another OS process) listens.
    pub fn add_peer(&self, addr: FlipAddress, at: SocketAddr) {
        let mut reg = self.registry.lock();
        reg.peers.insert(addr, at);
        self.publish(&reg);
    }

    /// The socket address a registered or pre-bound local endpoint
    /// listens on (tests and harnesses read ports through this).
    pub fn local_addr(&self, addr: FlipAddress) -> Option<SocketAddr> {
        let reg = self.registry.lock();
        if let Some(sock) = reg.prebound.get(&addr) {
            return sock.local_addr().ok();
        }
        reg.peers.get(&addr).copied()
    }
}

impl Transport for UdpNet {
    /// Plugs `addr` in: adopts its pre-bound socket (or binds a fresh
    /// loopback port), spawns its receive pump and send thread, and
    /// announces the port to local senders.
    ///
    /// # Panics
    ///
    /// Panics if the OS refuses to bind or the threads cannot spawn —
    /// endpoint creation failing is a harness-level error, not a
    /// protocol outcome.
    fn register(&self, addr: FlipAddress) -> Receiver<Datagram> {
        let mut reg = self.registry.lock();
        // Re-registration replaces the endpoint (mirrors LiveNet).
        if let Some(old) = reg.local.remove(&addr) {
            old.shutdown.store(true, Ordering::Relaxed);
        }
        let sock = reg.prebound.remove(&addr).unwrap_or_else(|| {
            Arc::new(UdpSocket::bind(("127.0.0.1", 0)).expect("bind UDP endpoint"))
        });
        let local = sock.local_addr().expect("bound socket has an address");
        let (inbox_tx, inbox_rx) = channel::unbounded();
        let (queue_tx, queue_rx) = channel::unbounded();
        let shutdown = Arc::new(AtomicBool::new(false));

        let pump = PumpState {
            sock: Arc::clone(&sock),
            me: addr,
            inbox: inbox_tx,
            shutdown: Arc::clone(&shutdown),
            published: Arc::clone(&self.published),
            purge_after: self.cfg.purge_after,
        };
        std::thread::Builder::new()
            .name(format!("udp-pump-{addr}"))
            .spawn(move || pump.run())
            .expect("spawn UDP receive pump");

        let send = SendState {
            sock,
            from: addr,
            queue: queue_rx,
            shutdown: Arc::clone(&shutdown),
            published: Arc::clone(&self.published),
            max_datagram: self.cfg.max_datagram,
        };
        std::thread::Builder::new()
            .name(format!("udp-send-{addr}"))
            .spawn(move || send.run())
            .expect("spawn UDP send thread");

        reg.peers.insert(addr, local);
        reg.local.insert(addr, Endpoint { queue: queue_tx, shutdown });
        self.publish(&reg);
        inbox_rx
    }

    fn unregister(&self, addr: FlipAddress) {
        let mut reg = self.registry.lock();
        if let Some(ep) = reg.local.remove(&addr) {
            ep.shutdown.store(true, Ordering::Relaxed);
        }
        reg.peers.remove(&addr);
        reg.prebound.remove(&addr);
        for members in reg.groups.values_mut() {
            members.remove(&addr);
        }
        self.publish(&reg);
    }

    fn join_mcast(&self, group: GroupId, addr: FlipAddress) {
        let mut reg = self.registry.lock();
        reg.groups.entry(group).or_default().insert(addr);
        self.publish(&reg);
    }

    fn sender(&self, from: FlipAddress) -> Box<dyn TransportSender> {
        let reg = self.registry.lock();
        let queue = reg
            .local
            .get(&from)
            .map(|ep| ep.queue.clone())
            // An unregistered sender's traffic blackholes (disconnected
            // channel): best-effort, like the fabric itself.
            .unwrap_or_else(|| channel::unbounded().0);
        Box::new(UdpSender { queue })
    }
}

impl Drop for UdpNet {
    fn drop(&mut self) {
        // Registry entries (and their queue senders) drop with us; the
        // flags stop the pumps within one read-timeout tick.
        for ep in self.registry.lock().local.values() {
            ep.shutdown.store(true, Ordering::Relaxed);
        }
    }
}

/// The per-endpoint sending port: enqueues to the endpoint's send
/// thread, which batches socket writes.
struct UdpSender {
    queue: Sender<SendItem>,
}

impl TransportSender for UdpSender {
    fn unicast(&mut self, to: FlipAddress, frame: WireFrame) {
        let _ = self.queue.send(SendItem::Unicast(to, frame));
    }

    fn multicast(&mut self, group: GroupId, frame: WireFrame) {
        let _ = self.queue.send(SendItem::Multicast(group, frame));
    }
}

/// The send thread: drains its queue batch-wise (every frame queued
/// behind a wake goes out before the next block), fragments against
/// the datagram ceiling, and gather-encodes envelope + frame slices
/// into one reusable scratch per `send_to`.
struct SendState {
    sock: Arc<UdpSocket>,
    from: FlipAddress,
    queue: Receiver<SendItem>,
    shutdown: Arc<AtomicBool>,
    published: Arc<Published>,
    max_datagram: usize,
}

impl SendState {
    fn run(self) {
        let mut cache = Cache::new();
        let mut scratch: Vec<u8> = Vec::with_capacity(self.max_datagram);
        let mut msg_id = 0u64;
        loop {
            let first = match self.queue.recv_timeout(Duration::from_millis(100)) {
                Ok(item) => item,
                Err(RecvTimeoutError::Timeout) => {
                    if self.shutdown.load(Ordering::Relaxed) {
                        return;
                    }
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => return,
            };
            // One wake, whole queue: refresh the peer table once and
            // stream every queued frame through the same scratch.
            cache.refresh(&self.published);
            let mut next = Some(first);
            while let Some(item) = next {
                msg_id += 1;
                self.emit(&cache, &mut scratch, msg_id, item);
                next = self.queue.try_recv().ok();
            }
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
        }
    }

    /// Fragments and writes one frame to its resolved targets. Socket
    /// errors and unknown destinations drop silently (best-effort).
    fn emit(&self, cache: &Cache, scratch: &mut Vec<u8>, msg_id: u64, item: SendItem) {
        let single: [SocketAddr; 1];
        let fanout: Vec<SocketAddr>;
        let (dst, frame, targets): (u64, WireFrame, &[SocketAddr]) = match item {
            SendItem::Unicast(to, frame) => {
                let Some(&at) = cache.snap.peers.get(&to) else { return };
                single = [at];
                (to.as_u64(), frame, &single[..])
            }
            SendItem::Multicast(group, frame) => {
                fanout = cache
                    .snap
                    .peers
                    .iter()
                    .filter(|(a, _)| **a != self.from)
                    .map(|(_, at)| *at)
                    .collect();
                (GROUP_TAG | (group.0 & !GROUP_TAG), frame, &fanout[..])
            }
        };
        if targets.is_empty() {
            return;
        }
        let budget = (self.max_datagram - ENVELOPE_LEN) as u32;
        let lens = split_lens(frame.len() as u32, budget);
        if lens.len() > u16::MAX as usize {
            return; // cannot be expressed on the wire; drop
        }
        let count = lens.len() as u16;
        let mut off = 0usize;
        for (index, len) in lens.into_iter().enumerate() {
            scratch.clear();
            let env = Envelope {
                src: self.from.as_u64(),
                dst,
                msg_id,
                index: index as u16,
                count,
            };
            encode_envelope(scratch, &env);
            gather_range(scratch, &frame, off, len as usize);
            for at in targets {
                let _ = self.sock.send_to(scratch, at);
            }
            off += len as usize;
        }
    }
}

/// The receive pump: blocks on the socket (with a timeout tick so the
/// shutdown flag is honored), validates envelopes, filters group
/// traffic by the endpoint's own subscriptions, reassembles fragments,
/// and feeds `(source, WireFrame)` pairs to the driver loop.
struct PumpState {
    sock: Arc<UdpSocket>,
    me: FlipAddress,
    inbox: Sender<Datagram>,
    shutdown: Arc<AtomicBool>,
    published: Arc<Published>,
    purge_after: Duration,
}

impl PumpState {
    fn run(self) {
        let _ = self.sock.set_read_timeout(Some(Duration::from_millis(250)));
        let mut scratch = vec![0u8; MAX_UDP_DATAGRAM];
        let mut reasm: Reassembler<Bytes> = Reassembler::new();
        let mut cache = Cache::new();
        let started = Instant::now();
        let purge_ms = self.purge_after.as_millis().max(1) as u64;
        let mut purged_at = 0u64;
        while !self.shutdown.load(Ordering::Relaxed) {
            let n = match self.sock.recv_from(&mut scratch) {
                Ok((n, _)) => n,
                // Timeout tick, or a transient error (loopback can
                // surface ICMP-style failures): never panic the pump.
                Err(_) => {
                    let now_ms = started.elapsed().as_millis() as u64;
                    if now_ms.saturating_sub(purged_at) >= purge_ms {
                        reasm.purge_older_than(now_ms.saturating_sub(purge_ms));
                        purged_at = now_ms;
                    }
                    continue;
                }
            };
            // The one userspace copy of the receive path: socket
            // scratch → exact-size refcounted buffer. The envelope
            // split, reassembly fast path and frame decode below are
            // all views of this allocation.
            let datagram = Bytes::from(scratch[..n].to_vec());
            let Some((env, body)) = split_envelope(&datagram) else { continue };
            let src = FlipAddress::from_u64(env.src);
            if !src.is_process() {
                continue;
            }
            let dst = FlipAddress::from_u64(env.dst);
            if dst.is_group() {
                // The "NIC multicast filter": drop traffic for groups
                // this endpoint never joined.
                cache.refresh(&self.published);
                let joined = cache
                    .snap
                    .groups
                    .get(&GroupId(dst.id()))
                    .is_some_and(|m| m.contains(&self.me));
                if !joined {
                    continue;
                }
            } else if dst != self.me {
                continue; // stray unicast for somebody else
            }
            let now_ms = started.elapsed().as_millis() as u64;
            let complete = if env.count == 1 {
                Some(body)
            } else {
                let key = FragKey { src, msg_id: env.msg_id };
                reasm.insert_payload(key, env.index, env.count, body, now_ms)
            };
            if let Some(buf) = complete {
                if self.inbox.send((src, WireFrame::from(buf))).is_err() {
                    return; // driver gone; endpoint is dead
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u64) -> FlipAddress {
        FlipAddress::process(n)
    }

    fn frame(payload: Vec<u8>) -> WireFrame {
        WireFrame::from(Bytes::from(payload))
    }

    fn encode_datagram(env: &Envelope, body: &[u8]) -> Bytes {
        let mut out = Vec::new();
        encode_envelope(&mut out, env);
        out.extend_from_slice(body);
        Bytes::from(out)
    }

    fn recv(rx: &Receiver<Datagram>) -> Datagram {
        rx.recv_timeout(Duration::from_secs(5)).expect("delivered")
    }

    #[test]
    fn envelope_round_trips() {
        let env = Envelope { src: 3, dst: GROUP_TAG | 9, msg_id: 77, index: 2, count: 5 };
        let datagram = encode_datagram(&env, b"body");
        let (back, body) = split_envelope(&datagram).expect("valid");
        assert_eq!((back.src, back.dst, back.msg_id), (3, GROUP_TAG | 9, 77));
        assert_eq!((back.index, back.count), (2, 5));
        assert_eq!(&body[..], b"body");
    }

    #[test]
    fn malformed_envelopes_rejected() {
        let good = encode_datagram(
            &Envelope { src: 1, dst: 2, msg_id: 1, index: 0, count: 1 },
            b"x",
        );
        assert!(split_envelope(&good).is_some());
        // Truncated.
        assert!(split_envelope(&good.slice(..ENVELOPE_LEN - 1)).is_none());
        // Wrong magic / version.
        let mut bad = good.to_vec();
        bad[0] ^= 0xFF;
        assert!(split_envelope(&Bytes::from(bad)).is_none());
        let mut bad = good.to_vec();
        bad[2] = VERSION + 1;
        assert!(split_envelope(&Bytes::from(bad)).is_none());
        // Impossible fragment fields.
        for (index, count) in [(0u16, 0u16), (3, 3), (4, 3)] {
            let d = encode_datagram(
                &Envelope { src: 1, dst: 2, msg_id: 1, index, count },
                b"x",
            );
            assert!(split_envelope(&d).is_none(), "index {index} of {count}");
        }
        assert!(split_envelope(&Bytes::new()).is_none());
    }

    /// The zero-copy claim of the receive path, pinned: after the one
    /// scratch → buffer copy, the body is a refcounted view of the
    /// datagram buffer, and the single-fragment fast path hands that
    /// very allocation onward as the frame.
    #[test]
    fn decoded_body_shares_the_datagram_allocation() {
        let env = Envelope { src: 1, dst: 2, msg_id: 9, index: 0, count: 1 };
        let datagram = encode_datagram(&env, &vec![7u8; 4096]);
        let (_, body) = split_envelope(&datagram).expect("valid");
        assert!(body.shares_allocation(&datagram), "body must be a view, not a copy");
        let mut r: Reassembler<Bytes> = Reassembler::new();
        let key = FragKey { src: addr(1), msg_id: 9 };
        let assembled = r.insert_payload(key, 0, 1, body, 0).expect("fast path");
        assert!(assembled.shares_allocation(&datagram), "fast path must not copy");
    }

    #[test]
    fn gather_range_crosses_the_segment_boundary() {
        let f = WireFrame {
            head: Bytes::from_static(b"headxx"),
            tail: Some(Bytes::from_static(b"TAILBYTES")),
        };
        let mut out = Vec::new();
        gather_range(&mut out, &f, 0, f.len());
        assert_eq!(out, b"headxxTAILBYTES");
        out.clear();
        gather_range(&mut out, &f, 4, 5); // xx + TAI
        assert_eq!(out, b"xxTAI");
        out.clear();
        gather_range(&mut out, &f, 7, 4); // tail only
        assert_eq!(out, b"AILB");
    }

    #[test]
    fn unicast_reaches_endpoint() {
        let net = UdpNet::new(UdpConfig::default());
        let rx = net.register(addr(1));
        net.register(addr(2));
        let mut tx = net.sender(addr(2));
        tx.unicast(addr(1), frame(b"hi".to_vec()));
        let (from, f) = recv(&rx);
        assert_eq!(from, addr(2));
        assert_eq!(&f.to_contiguous()[..], b"hi");
    }

    #[test]
    fn multicast_excludes_sender_and_respects_subscriptions() {
        let net = UdpNet::new(UdpConfig::default());
        let g = GroupId(9);
        let rx1 = net.register(addr(1));
        let rx2 = net.register(addr(2));
        let rx3 = net.register(addr(3));
        net.join_mcast(g, addr(1));
        net.join_mcast(g, addr(2));
        // addr(3) never joins: its pump must filter the group traffic.
        let mut tx = net.sender(addr(1));
        tx.multicast(g, frame(b"m".to_vec()));
        let (from, f) = recv(&rx2);
        assert_eq!(from, addr(1));
        assert_eq!(&f.to_contiguous()[..], b"m");
        assert!(rx1.recv_timeout(Duration::from_millis(100)).is_err(), "no loopback");
        assert!(rx3.recv_timeout(Duration::from_millis(100)).is_err(), "not subscribed");
    }

    #[test]
    fn large_frames_fragment_and_reassemble() {
        // A tiny ceiling forces many fragments out of a small payload.
        let net = UdpNet::new(UdpConfig {
            max_datagram: ENVELOPE_LEN + 16,
            ..UdpConfig::default()
        });
        let rx = net.register(addr(1));
        net.register(addr(2));
        let payload: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let mut tx = net.sender(addr(2));
        tx.unicast(addr(1), frame(payload.clone()));
        let (_, f) = recv(&rx);
        assert_eq!(&f.to_contiguous()[..], &payload[..]);
    }

    #[test]
    fn unknown_destination_drops_silently() {
        let net = UdpNet::new(UdpConfig::default());
        net.register(addr(1));
        let mut tx = net.sender(addr(1));
        tx.unicast(addr(99), frame(b"x".to_vec()));
        // Nothing to assert beyond "no panic": give the send thread a
        // beat to process the drop.
        std::thread::sleep(Duration::from_millis(50));
    }

    #[test]
    fn unregistered_endpoint_blackholes() {
        let net = UdpNet::new(UdpConfig::default());
        let rx = net.register(addr(1));
        net.register(addr(2));
        net.unregister(addr(1));
        let mut tx = net.sender(addr(2));
        tx.unicast(addr(1), frame(b"x".to_vec()));
        assert!(rx.recv_timeout(Duration::from_millis(100)).is_err());
    }

    #[test]
    fn prebound_socket_is_adopted_by_register() {
        let net = UdpNet::new(UdpConfig::default());
        let before = net.bind_endpoint(addr(1)).expect("bind");
        let rx = net.register(addr(1));
        assert_eq!(net.local_addr(addr(1)), Some(before), "same socket, same port");
        net.register(addr(2));
        let mut tx = net.sender(addr(2));
        tx.unicast(addr(1), frame(b"pb".to_vec()));
        let (_, f) = recv(&rx);
        assert_eq!(&f.to_contiguous()[..], b"pb");
    }

    #[test]
    fn add_peer_routes_to_a_foreign_socket() {
        // Simulate a remote process with a hand-bound socket.
        let foreign = UdpSocket::bind(("127.0.0.1", 0)).expect("bind");
        foreign.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let at = foreign.local_addr().expect("addr");
        let net = UdpNet::new(UdpConfig::default());
        net.register(addr(1));
        net.add_peer(addr(2), at);
        let mut tx = net.sender(addr(1));
        tx.unicast(addr(2), frame(b"remote".to_vec()));
        let mut buf = [0u8; 256];
        let (n, _) = foreign.recv_from(&mut buf).expect("datagram arrives");
        let (env, body) = split_envelope(&Bytes::from(buf[..n].to_vec())).expect("valid");
        assert_eq!(env.src, addr(1).as_u64());
        assert_eq!(env.dst, addr(2).as_u64());
        assert_eq!(&body[..], b"remote");
    }
}
