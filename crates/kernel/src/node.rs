//! One simulated machine: its kernel protocol entities and the
//! application workload driving them.

use amoeba_app::{GroupApp, TimerId};
use amoeba_core::{GroupCore, GroupId, TimerKind};
use amoeba_flip::{FlipAddress, Reassembler};
use amoeba_net::HostId;
use amoeba_rpc::{RpcClient, RpcServer};
use amoeba_sim::{EventId, SimTime};

use crate::payload::SimPacket;

/// The canned application behaviours predating the portable
/// [`GroupApp`] API. `Sender` is now sugar: `SimWorld::set_workload`
/// installs an [`amoeba_app::SenderApp`] for it, so the kernel's only
/// hard-coded application logic left is the RPC baseline (which is not
/// group communication and has no portable host). New scenarios should
/// implement [`GroupApp`] and use `SimWorld::set_app` (or `SimHost`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Receives only.
    Idle,
    /// Sends `remaining` messages of `size` bytes back to back (each
    /// send waits for the previous completion — the paper's delay and
    /// throughput loops). Desugars to [`amoeba_app::SenderApp`].
    Sender {
        /// Payload bytes per message.
        size: u32,
        /// Sends left to issue (`u64::MAX` ≈ continuous).
        remaining: u64,
    },
    /// Issues `remaining` null RPCs of `size` bytes to `server`.
    RpcPinger {
        /// Request bytes.
        size: u32,
        /// Calls left.
        remaining: u64,
        /// The server process.
        server: FlipAddress,
    },
    /// Answers RPCs by echoing.
    RpcEcho,
}

/// Per-node measurement counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeStats {
    /// Completed sends.
    pub sends_ok: u64,
    /// Failed sends.
    pub sends_err: u64,
    /// Events delivered to the application.
    pub deliveries: u64,
    /// Completed RPC calls.
    pub rpcs_ok: u64,
}

/// One simulated machine.
pub struct SimNode {
    /// The underlying host (same index as the node).
    pub host: HostId,
    /// This node's FLIP process address.
    pub addr: FlipAddress,
    /// The group membership living on this node, if any.
    pub core: Option<GroupCore>,
    /// Which group the core belongs to.
    pub group: Option<GroupId>,
    /// RPC client entity, if the workload calls.
    pub rpc_client: Option<RpcClient>,
    /// RPC server entity, if the workload answers.
    pub rpc_server: Option<RpcServer>,
    /// The application behaviour (RPC baseline workloads only; group
    /// applications live in `app`).
    pub workload: Workload,
    /// The event-driven application hosted on this node, if any.
    pub(crate) app: Option<Box<dyn GroupApp>>,
    /// The app has been started (`on_start` ran).
    pub(crate) app_started: bool,
    /// The app has ended (stopped, left, or crashed): no further
    /// callbacks.
    pub(crate) app_done: bool,
    /// Simulated instant the app started (zero point of `Ctx::now`).
    pub(crate) app_start: SimTime,
    /// Application sends queued behind the pipelining window, oldest
    /// first. `Kernel::maybe_kick` issues from here whenever the
    /// window has room.
    pub(crate) pending_sends: std::collections::VecDeque<bytes::Bytes>,
    /// Fragment reassembly (per-sender streams).
    pub(crate) reasm: Reassembler<SimPacket>,
    pub(crate) next_frag_id: u64,
    /// The receive-interrupt drain loop is running.
    pub(crate) draining: bool,
    /// Application events queued behind the receive thread.
    pub(crate) rx_backlog: u32,
    /// When the current blocking RPC call was issued.
    pub(crate) issued_at: Option<SimTime>,
    /// Group sends in flight (issued, not yet completed). Bounded by
    /// the group's `send_window`; 1 reproduces the paper's blocking
    /// sender loop.
    pub(crate) in_flight: u32,
    /// Issue timestamps of in-flight sends, oldest first (completions
    /// are FIFO in failure-free runs, which is what the delay metric
    /// measures).
    pub(crate) issued_q: std::collections::VecDeque<SimTime>,
    /// The application thread is mid-way through issuing a send (guards
    /// against re-entrant kicks).
    pub(crate) issuing: bool,
    /// Admission completed (JoinDone(Ok) observed).
    pub ready: bool,
    /// Counted in the world's `unready_cores` (an admission outcome —
    /// success, failure, or crash — is still pending). Guards every
    /// increment/decrement so no path can double-count.
    pub(crate) admission_pending: bool,
    /// Armed group-protocol timers. Per-node (not a world-global map
    /// keyed by node) so a crash cancels O(own timers), not O(world).
    pub(crate) proto_timers: std::collections::HashMap<TimerKind, EventId>,
    /// The armed RPC-client retransmit timer, if any.
    pub(crate) rpc_timer: Option<EventId>,
    /// Armed application timers (`Ctx::set_timer`).
    pub(crate) app_timers: std::collections::HashMap<TimerId, EventId>,
    /// Measurement counters.
    pub stats: NodeStats,
}

impl SimNode {
    pub(crate) fn new(host: HostId, addr: FlipAddress) -> Self {
        SimNode {
            host,
            addr,
            core: None,
            group: None,
            rpc_client: None,
            rpc_server: None,
            workload: Workload::Idle,
            app: None,
            app_started: false,
            app_done: false,
            app_start: SimTime::ZERO,
            pending_sends: std::collections::VecDeque::new(),
            reasm: Reassembler::new(),
            next_frag_id: 0,
            draining: false,
            rx_backlog: 0,
            issued_at: None,
            in_flight: 0,
            issued_q: std::collections::VecDeque::new(),
            issuing: false,
            ready: false,
            admission_pending: false,
            proto_timers: std::collections::HashMap::new(),
            rpc_timer: None,
            app_timers: std::collections::HashMap::new(),
            stats: NodeStats::default(),
        }
    }
}

impl std::fmt::Debug for SimNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNode")
            .field("host", &self.host)
            .field("addr", &self.addr)
            .field("group", &self.group)
            .field("workload", &self.workload)
            .field("ready", &self.ready)
            .field("stats", &self.stats)
            .finish()
    }
}
