//! The simulated Amoeba kernel: the paper's testbed in software.
//!
//! This crate assembles the full communication stack of the paper's
//! Table 2 — group communication and RPC on top of FLIP on top of a
//! 10 Mbit/s Ethernet — onto simulated 20-MHz MC68030 hosts, charging
//! every layer's CPU time from a calibrated [`CostModel`]. The
//! evaluation harness (`amoeba-bench`) uses [`SimWorld`] to regenerate
//! every figure and table of the ICDCS '96 evaluation.
//!
//! What is faithfully modelled (because the paper's results depend on
//! it): per-layer processing costs and copies, the Lance's 32-frame
//! receive ring, CSMA/CD contention, fragmentation above one Ethernet
//! frame, the sequencer's history buffer, and blocking one-at-a-time
//! user sends (or, with a `send_window` > 1, pipelined sends and the
//! batch frames of DESIGN.md §6). What is simplified: FLIP's locate
//! (routing is static on the single segment) and cryptographic
//! addresses — neither is exercised by any experiment.
//!
//! This crate is the "simulated" half of DESIGN.md §3 (repository
//! root); the calibration it rests on is EXPERIMENTS.md.

mod cost;
mod host;
mod node;
mod payload;
mod world;

pub use cost::CostModel;
pub use host::{SimHost, SimRun};
pub use node::{NodeStats, SimNode, Workload};
pub use payload::{SimFrag, SimPacket};
pub use world::{Kernel, KernelWorld, SimWorld, WorldMetrics, LINK_HEADER_LEN};

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_core::{GroupConfig, GroupId};
    use amoeba_sim::SimDuration;

    fn null_broadcast_world(members: usize) -> SimWorld {
        let mut w = SimWorld::new(CostModel::mc68030_ether10(), 7);
        let group = GroupId(1);
        for _ in 0..members {
            w.add_node();
        }
        w.create_group(0, group, GroupConfig::default());
        for n in 1..members {
            w.join_group(n, group, GroupConfig::default());
        }
        w.run_until_ready();
        w
    }

    #[test]
    fn group_forms_and_null_send_completes() {
        let mut w = null_broadcast_world(2);
        w.set_workload(1, Workload::Sender { size: 0, remaining: 10 });
        w.kick();
        w.run_for(SimDuration::from_secs(1));
        assert_eq!(w.sim.world.metrics.sends_ok.get(), 10);
        assert!(w.sim.world.nodes[0].stats.deliveries >= 10);
    }

    #[test]
    fn null_broadcast_delay_is_near_2_7_ms() {
        // The paper's headline: 2.7 ms for a group of two.
        let mut w = null_broadcast_world(2);
        w.set_workload(1, Workload::Sender { size: 0, remaining: 200 });
        w.kick();
        w.run_for(SimDuration::from_secs(2));
        let mean = w.sim.world.metrics.send_delay_us.mean();
        assert!(
            (2_400.0..3_100.0).contains(&mean),
            "expected ≈2700 µs, got {mean:.0}"
        );
    }

    #[test]
    fn delay_grows_mildly_with_group_size() {
        let mean_for = |members: usize| {
            let mut w = null_broadcast_world(members);
            let sender = members - 1;
            w.set_workload(sender, Workload::Sender { size: 0, remaining: 100 });
            w.kick();
            w.run_for(SimDuration::from_secs(2));
            w.sim.world.metrics.send_delay_us.mean()
        };
        let d2 = mean_for(2);
        let d30 = mean_for(30);
        assert!(d30 > d2, "more members, slightly more delay");
        assert!(
            d30 - d2 < 400.0,
            "the sequencer protocol is nearly flat in group size: {d2:.0} → {d30:.0}"
        );
    }

    #[test]
    fn eight_kb_messages_fragment_and_cost_much_more() {
        let mut w = null_broadcast_world(2);
        w.set_workload(1, Workload::Sender { size: 8_000, remaining: 20 });
        w.kick();
        w.run_for(SimDuration::from_secs(5));
        assert_eq!(w.sim.world.metrics.sends_ok.get(), 20);
        let mean = w.sim.world.metrics.send_delay_us.mean();
        assert!(mean > 10_000.0, "8000-byte PB messages cross the wire twice: {mean:.0}");
    }

    #[test]
    fn rpc_baseline_runs() {
        let mut w = SimWorld::new(CostModel::mc68030_ether10(), 9);
        let client = w.add_node();
        let server = w.add_node();
        let server_addr = w.sim.world.nodes[server].addr;
        w.set_workload(server, Workload::RpcEcho);
        w.set_workload(client, Workload::RpcPinger { size: 0, remaining: 50, server: server_addr });
        w.kick();
        w.run_for(SimDuration::from_secs(2));
        assert_eq!(w.sim.world.nodes[client].stats.rpcs_ok, 50);
        let mean = w.sim.world.metrics.rpc_delay_us.mean();
        assert!((2_000.0..4_000.0).contains(&mean), "null RPC ≈ 2.8 ms, got {mean:.0}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut w = null_broadcast_world(4);
            for n in 0..4 {
                w.set_workload(n, Workload::Sender { size: 1024, remaining: 50 });
            }
            w.kick();
            w.run_for(SimDuration::from_secs(3));
            (
                w.sim.world.metrics.sends_ok.get(),
                w.sim.world.metrics.send_delay_us.mean(),
                w.sim.events_executed(),
            )
        };
        assert_eq!(run(), run());
    }
}
