//! The simulated Amoeba world: hosts running the kernel communication
//! stack (Table 2 of the paper: group/RPC layer → FLIP → Ethernet),
//! with every layer's CPU cost charged per the calibrated [`CostModel`].

use std::collections::HashMap;

use amoeba_app::{AppEvent, GroupApp, SenderApp};
use amoeba_core::{
    Action, Dest, GroupConfig, GroupCore, GroupEvent, GroupId, Seqno, TimerKind,
};
use amoeba_flip::{FlipAddress, FragKey, Route, RouteTable, FLIP_HEADER_LEN};
use amoeba_net::{CpuPriority, Frame, HostId, McastAddr, Net, NetConfig, NetView};
use amoeba_rpc::{RpcAction, RpcClient, RpcMsg, RpcServer, ServerEvent};
use amoeba_sim::{Counter, Histogram, SimDuration, SimTime, Simulation};
use bytes::Bytes;

use crate::cost::CostModel;
use crate::host::{AppCall, Apps};
use crate::node::{SimNode, Workload};
use crate::payload::{SimFrag, SimPacket};

/// Link-level bytes before the FLIP header: 14 B Ethernet + 2 B flow
/// control (paper's accounting).
pub const LINK_HEADER_LEN: u32 = 16;

/// Measurements accumulated across a run.
#[derive(Debug, Clone, Default)]
pub struct WorldMetrics {
    /// Per-send latency (µs) of completed `SendToGroup`s.
    pub send_delay_us: Histogram,
    /// Per-call latency (µs) of completed RPCs.
    pub rpc_delay_us: Histogram,
    /// Completed sends (all nodes).
    pub sends_ok: Counter,
    /// Failed sends.
    pub sends_err: Counter,
    /// Events delivered to applications.
    pub deliveries: Counter,
}

/// The complete simulation state.
pub struct KernelWorld {
    /// The network substrate.
    pub net: Net<KernelWorld>,
    /// The machines.
    pub nodes: Vec<SimNode>,
    /// FLIP routing (global, static: locate is not simulated — every
    /// experiment runs on one segment with known membership).
    pub routes: RouteTable<HostId>,
    /// The cost model.
    pub cost: CostModel,
    /// Measurements.
    pub metrics: WorldMetrics,
    /// Nodes whose group core has not completed admission yet. Kept
    /// incrementally so `run_until_ready` tests one integer per event
    /// instead of scanning every node.
    pub(crate) unready_cores: usize,
    /// Installed applications that have not ended yet (same role, for
    /// `run_until_apps_done`).
    pub(crate) running_apps: usize,
    /// Joins that gave up (`JoinDone(Err)`): `run_until_ready` fails
    /// fast on these instead of spinning to its deadline.
    pub(crate) join_failures: usize,
    payload_cache: HashMap<u32, Bytes>,
}

impl std::fmt::Debug for KernelWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelWorld")
            .field("nodes", &self.nodes.len())
            .field("metrics", &self.metrics)
            .finish()
    }
}

impl NetView for KernelWorld {
    type Payload = SimFrag;

    fn net(&mut self) -> &mut Net<KernelWorld> {
        &mut self.net
    }

    fn on_frame_buffered(sim: &mut Simulation<KernelWorld>, host: HostId) {
        Kernel::rx_kick(sim, host);
    }
}

impl KernelWorld {
    fn cached_payload(&mut self, size: u32) -> Bytes {
        self.payload_cache
            .entry(size)
            .or_insert_with(|| Bytes::from(vec![0u8; size as usize]))
            .clone()
    }
}

/// Namespace for the kernel's event-driven plumbing.
pub struct Kernel;

type Sim = Simulation<KernelWorld>;

enum PacketDest {
    Process(FlipAddress),
    Group(GroupId),
}

impl Kernel {
    // ------------------------------------------------------------------
    // Receive path: interrupt → drain → reassemble → dispatch
    // ------------------------------------------------------------------

    /// A frame landed in the ring: start the drain loop unless it is
    /// already running (one interrupt per frame, as on the Lance).
    fn rx_kick(sim: &mut Sim, host: HostId) {
        let n = host.0;
        if sim.world.nodes[n].draining {
            return;
        }
        sim.world.nodes[n].draining = true;
        Self::rx_drain(sim, host);
    }

    fn rx_drain(sim: &mut Sim, host: HostId) {
        let n = host.0;
        let Some(frame) = sim.world.net.host_mut(host).nic.pop_rx() else {
            sim.world.nodes[n].draining = false;
            return;
        };
        // Interrupt + driver + FLIP demux per frame, plus the first copy
        // (Lance buffer → protocol buffer).
        let c = sim.world.cost;
        let cost = c.ether_rx + c.flip_rx + c.copy_cost(frame.wire_len);
        amoeba_net::Net::cpu_run(
            sim,
            host,
            CpuPriority::Interrupt,
            SimDuration::from_micros(cost),
            move |sim| {
                Self::reassemble(sim, host, frame);
                Self::rx_drain(sim, host);
            },
        );
    }

    fn reassemble(sim: &mut Sim, host: HostId, frame: Frame<SimFrag>) {
        let n = host.0;
        let frag = frame.payload;
        let key = FragKey { src: frag.packet.from(), msg_id: frag.msg_id };
        let now = sim.now().as_micros();
        let node = &mut sim.world.nodes[n];
        if node.reasm.pending() > 64 {
            node.reasm.purge_older_than(now.saturating_sub(1_000_000));
        }
        let done = node.reasm.insert(key, frag.index, frag.count, frag.packet, now);
        if let Some(mut parts) = done {
            let packet = parts.pop().expect("at least one fragment");
            Self::dispatch(sim, n, packet);
        }
    }

    /// A whole packet is assembled: charge the owning layer and run the
    /// protocol state machine.
    fn dispatch(sim: &mut Sim, n: usize, packet: SimPacket) {
        match packet {
            SimPacket::Group { from, msg } => {
                let is_seq =
                    sim.world.nodes[n].core.as_ref().map(|c| c.is_sequencer()).unwrap_or(false);
                let cost = sim.world.cost.group_layer_rx(is_seq, &msg.body);
                amoeba_net::Net::cpu_run(
                    sim,
                    HostId(n),
                    CpuPriority::Kernel,
                    SimDuration::from_micros(cost),
                    move |sim| {
                        let Some(core) = sim.world.nodes[n].core.as_mut() else { return };
                        let actions = core.handle_message(from, msg);
                        Self::execute_group_actions(sim, n, actions);
                    },
                );
            }
            SimPacket::Rpc { from, msg } => {
                let cost = sim.world.cost.rpc_layer;
                amoeba_net::Net::cpu_run(
                    sim,
                    HostId(n),
                    CpuPriority::Kernel,
                    SimDuration::from_micros(cost),
                    move |sim| Self::dispatch_rpc(sim, n, from, msg),
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Transmit path: fragment, charge, hand to the NIC
    // ------------------------------------------------------------------

    fn send_packet(sim: &mut Sim, n: usize, dest: PacketDest, packet: SimPacket) {
        let mtu_payload = sim.world.net.config.mtu - LINK_HEADER_LEN - FLIP_HEADER_LEN;
        let size = packet.wire_size();
        let lens = amoeba_flip::split_lens(size, mtu_payload);
        let count = lens.len() as u16;
        let msg_id = {
            let node = &mut sim.world.nodes[n];
            node.next_frag_id += 1;
            node.next_frag_id
        };
        let (frames, ndst): (Vec<Frame<SimFrag>>, usize) = {
            let world = &mut sim.world;
            match dest {
                PacketDest::Process(addr) => match world.routes.lookup(addr) {
                    Some(&Route::Process(host)) => (
                        lens.iter()
                            .enumerate()
                            .map(|(i, &len)| {
                                Frame::unicast(
                                    HostId(n),
                                    host,
                                    LINK_HEADER_LEN + FLIP_HEADER_LEN + len,
                                    SimFrag {
                                        packet: packet.clone(),
                                        msg_id,
                                        index: i as u16,
                                        count,
                                    },
                                )
                            })
                            .collect(),
                        1,
                    ),
                    _ => return, // unroutable (dead or unknown): vanish
                },
                PacketDest::Group(group) => {
                    match world.routes.lookup(group.flip_address()) {
                        Some(Route::Group { members, mcast }) => {
                            let ndst = members.len();
                            let mcast = McastAddr(mcast.unwrap_or(group.0 as u32));
                            (
                                lens.iter()
                                    .enumerate()
                                    .map(|(i, &len)| {
                                        Frame::multicast(
                                            HostId(n),
                                            mcast,
                                            LINK_HEADER_LEN + FLIP_HEADER_LEN + len,
                                            SimFrag {
                                                packet: packet.clone(),
                                                msg_id,
                                                index: i as u16,
                                                count,
                                            },
                                        )
                                    })
                                    .collect(),
                                ndst,
                            )
                        }
                        _ => return,
                    }
                }
            }
        };
        // FLIP + driver + copy per fragment; the multicast fan-out adds
        // the paper's ~4 µs per destination on the send side.
        for frame in frames {
            let c = sim.world.cost;
            let cost = c.flip_send
                + c.ether_tx
                + c.copy_cost(frame.wire_len)
                + c.mcast_per_dest * ndst as u64;
            amoeba_net::Net::cpu_run(
                sim,
                HostId(n),
                CpuPriority::Kernel,
                SimDuration::from_micros(cost),
                move |sim| amoeba_net::Net::send_frame(sim, HostId(n), frame),
            );
        }
    }

    // ------------------------------------------------------------------
    // Group protocol action execution
    // ------------------------------------------------------------------

    pub(crate) fn register_membership(sim: &mut Sim, n: usize, group: GroupId) {
        let host = HostId(n);
        let gaddr = group.flip_address();
        sim.world.routes.register_group_member(gaddr, host);
        sim.world.routes.set_group_mcast(gaddr, group.0 as u32);
        sim.world.net.join_multicast(host, McastAddr(group.0 as u32));
    }

    /// Marks node `n`'s admission outcome as pending (counted in
    /// `unready_cores`). Idempotent: the flag guards the counter.
    pub(crate) fn admission_begin(sim: &mut Sim, n: usize) {
        if !sim.world.nodes[n].admission_pending {
            sim.world.nodes[n].admission_pending = true;
            sim.world.unready_cores += 1;
        }
    }

    /// Resolves node `n`'s pending admission (success, failure, or
    /// crash). Idempotent.
    pub(crate) fn admission_settle(sim: &mut Sim, n: usize) {
        if sim.world.nodes[n].admission_pending {
            sim.world.nodes[n].admission_pending = false;
            sim.world.unready_cores -= 1;
        }
    }

    /// Starts `JoinGroup` for node `n` — the event-context form of
    /// [`SimWorld::join_group`], shared by the immediate and the
    /// scheduled (`join_group_at`) paths.
    pub(crate) fn admit_join(sim: &mut Sim, n: usize, group: GroupId, config: GroupConfig) {
        Self::register_membership(sim, n, group);
        let addr = sim.world.nodes[n].addr;
        let (core, actions) = GroupCore::join(group, addr, config).expect("valid config");
        sim.world.nodes[n].core = Some(core);
        sim.world.nodes[n].group = Some(group);
        Self::admission_begin(sim, n);
        Self::execute_group_actions(sim, n, actions);
    }

    pub(crate) fn execute_group_actions(sim: &mut Sim, n: usize, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Send { dest, msg } => {
                    let from = sim.world.nodes[n].addr;
                    let dest = match dest {
                        Dest::Unicast(addr) => PacketDest::Process(addr),
                        Dest::Group => {
                            PacketDest::Group(sim.world.nodes[n].group.expect("member has group"))
                        }
                    };
                    Self::send_packet(sim, n, dest, SimPacket::Group { from, msg });
                }
                Action::SetTimer { kind, after_us } => Self::set_timer(sim, n, kind, after_us),
                Action::CancelTimer { kind } => {
                    if let Some(ev) = sim.world.nodes[n].proto_timers.remove(&kind) {
                        sim.cancel(ev);
                    }
                }
                Action::Deliver(ev) => Self::app_deliver(sim, n, ev),
                Action::SendDone(result) => Self::app_send_done(sim, n, result),
                Action::JoinDone(result) => {
                    // Both outcomes resolve the pending admission; a
                    // failure additionally counts so `run_until_ready`
                    // can fail fast instead of spinning to its
                    // deadline.
                    Self::admission_settle(sim, n);
                    if result.is_ok() {
                        sim.world.nodes[n].ready = true;
                        Apps::maybe_start(sim, n);
                        Self::maybe_kick(sim, n);
                    } else {
                        sim.world.join_failures += 1;
                    }
                }
                Action::LeaveDone(_) => {
                    // A graceful leave ends the hosted app (its last
                    // callback was the one that requested the leave).
                    Apps::finish(sim, n);
                }
                Action::ResetDone(result) => {
                    Apps::call(
                        sim,
                        n,
                        AppCall::Event(AppEvent::ResetDone(result.map_err(Into::into))),
                    );
                }
            }
        }
    }

    fn set_timer(sim: &mut Sim, n: usize, kind: TimerKind, after_us: u64) {
        if let Some(old) = sim.world.nodes[n].proto_timers.remove(&kind) {
            sim.cancel(old);
        }
        let ev = sim.schedule_in(SimDuration::from_micros(after_us), move |sim| {
            sim.world.nodes[n].proto_timers.remove(&kind);
            let cost = sim.world.cost.timer_dispatch;
            amoeba_net::Net::cpu_run(
                sim,
                HostId(n),
                CpuPriority::Kernel,
                SimDuration::from_micros(cost),
                move |sim| {
                    let Some(core) = sim.world.nodes[n].core.as_mut() else { return };
                    let actions = core.handle_timer(kind);
                    Self::execute_group_actions(sim, n, actions);
                },
            );
        });
        sim.world.nodes[n].proto_timers.insert(kind, ev);
    }

    // ------------------------------------------------------------------
    // Application side
    // ------------------------------------------------------------------

    /// Starts (or continues) the node's application: a sending thread
    /// issues whenever its group's `send_window` has room — window 1 is
    /// the paper's blocking loop, larger windows pipeline. Group sends
    /// come from the hosted [`GroupApp`]'s pending queue; the only
    /// hard-coded workload left is the RPC baseline.
    pub(crate) fn maybe_kick(sim: &mut Sim, n: usize) {
        if !sim.world.nodes[n].ready || sim.world.nodes[n].issuing {
            return;
        }
        if !sim.world.nodes[n].pending_sends.is_empty() {
            let window = sim.world.nodes[n]
                .core
                .as_ref()
                .map(|c| c.config().send_window)
                .unwrap_or(1);
            if (sim.world.nodes[n].in_flight as usize) < window {
                Self::app_issue_send(sim, n);
            }
        }
        match sim.world.nodes[n].workload {
            Workload::RpcPinger { size, remaining, server }
                if remaining > 0 && sim.world.nodes[n].issued_at.is_none() =>
            {
                Self::app_issue_rpc(sim, n, size, server);
            }
            _ => {}
        }
    }

    fn app_issue_send(sim: &mut Sim, n: usize) {
        let Some(payload) = sim.world.nodes[n].pending_sends.pop_front() else { return };
        sim.world.nodes[n].issuing = true; // re-entry guard
        // U1 (call entry) + the user→kernel copy…
        let c = sim.world.cost;
        let user_cost = c.user_send_entry + c.copy_cost(payload.len() as u32);
        let group_cost = c.group_send;
        amoeba_net::Net::cpu_run(
            sim,
            HostId(n),
            CpuPriority::User,
            SimDuration::from_micros(user_cost),
            move |sim| {
                // The call "begins" when the application thread actually
                // reaches SendToGroup (not while it is still queued
                // behind ReceiveFromGroup processing) — backdate to the
                // start of this job, as the paper's measurement loop does.
                let issued = sim.now() - SimDuration::from_micros(user_cost);
                sim.world.nodes[n].issued_q.push_back(issued);
                sim.world.nodes[n].in_flight += 1;
                // …then G1, then the protocol runs.
                amoeba_net::Net::cpu_run(
                    sim,
                    HostId(n),
                    CpuPriority::Kernel,
                    SimDuration::from_micros(group_cost),
                    move |sim| {
                        let Some(core) = sim.world.nodes[n].core.as_mut() else { return };
                        let actions = core.send_to_group(payload);
                        Self::execute_group_actions(sim, n, actions);
                        // The sender thread is free again: with window
                        // room left it loops straight into the next
                        // SendToGroup (pipelining); with window 1 it is
                        // blocked and this kick is a no-op.
                        sim.world.nodes[n].issuing = false;
                        Self::maybe_kick(sim, n);
                    },
                );
            },
        );
    }

    fn app_send_done(sim: &mut Sim, n: usize, result: Result<Seqno, amoeba_core::GroupError>) {
        // Waking the blocked sender thread costs a context switch.
        let cost = sim.world.cost.user_wakeup;
        amoeba_net::Net::cpu_run(
            sim,
            HostId(n),
            CpuPriority::User,
            SimDuration::from_micros(cost),
            move |sim| {
                if let Some(issued) = sim.world.nodes[n].issued_q.pop_front() {
                    sim.world.nodes[n].in_flight =
                        sim.world.nodes[n].in_flight.saturating_sub(1);
                    let delay = (sim.now() - issued).as_micros() as f64;
                    if result.is_ok() {
                        sim.world.metrics.send_delay_us.record(delay);
                        sim.world.metrics.sends_ok.incr();
                        sim.world.nodes[n].stats.sends_ok += 1;
                    } else {
                        sim.world.metrics.sends_err.incr();
                        sim.world.nodes[n].stats.sends_err += 1;
                    }
                }
                // The app reacts (typically by queueing the next send),
                // then the window is re-examined — this is the old
                // hard-coded sender loop, generalized.
                Apps::call(sim, n, AppCall::Event(AppEvent::SendDone(result.map_err(Into::into))));
            },
        );
    }

    fn app_deliver(sim: &mut Sim, n: usize, ev: GroupEvent) {
        let payload_len = match &ev {
            GroupEvent::Message { payload, .. } => payload.len() as u32,
            _ => 0,
        };
        let c = sim.world.cost;
        let was_idle = sim.world.nodes[n].rx_backlog == 0;
        sim.world.nodes[n].rx_backlog += 1;
        // The second copy (history buffer → user space) plus either a
        // cold thread wakeup or a warm hand-off.
        let cost =
            if was_idle { c.user_wakeup } else { c.user_warm } + c.copy_cost(payload_len);
        amoeba_net::Net::cpu_run(
            sim,
            HostId(n),
            CpuPriority::User,
            SimDuration::from_micros(cost),
            move |sim| {
                sim.world.nodes[n].rx_backlog -= 1;
                sim.world.nodes[n].stats.deliveries += 1;
                sim.world.metrics.deliveries.incr();
                Apps::call(sim, n, AppCall::Event(AppEvent::Group(ev)));
            },
        );
    }

    // ------------------------------------------------------------------
    // RPC (baseline)
    // ------------------------------------------------------------------

    fn app_issue_rpc(sim: &mut Sim, n: usize, size: u32, server: FlipAddress) {
        if let Workload::RpcPinger { remaining, .. } = &mut sim.world.nodes[n].workload {
            *remaining -= 1;
        }
        sim.world.nodes[n].issued_at = Some(sim.now()); // re-entry guard
        let c = sim.world.cost;
        let user_cost = c.user_send_entry + c.copy_cost(size);
        let rpc_cost = c.rpc_layer;
        amoeba_net::Net::cpu_run(
            sim,
            HostId(n),
            CpuPriority::User,
            SimDuration::from_micros(user_cost),
            move |sim| {
                let issued = sim.now() - SimDuration::from_micros(user_cost);
                sim.world.nodes[n].issued_at = Some(issued);
                amoeba_net::Net::cpu_run(
                    sim,
                    HostId(n),
                    CpuPriority::Kernel,
                    SimDuration::from_micros(rpc_cost),
                    move |sim| {
                        let payload = sim.world.cached_payload(size);
                        let Some(client) = sim.world.nodes[n].rpc_client.as_mut() else {
                            return;
                        };
                        let actions = client.call(server, payload);
                        Self::execute_rpc_actions(sim, n, actions);
                    },
                );
            },
        );
    }

    fn dispatch_rpc(sim: &mut Sim, n: usize, from: FlipAddress, msg: RpcMsg) {
        // Server side?
        if sim.world.nodes[n].rpc_server.is_some() {
            if let RpcMsg::Request { .. } = msg {
                let (events, actions) = sim.world.nodes[n]
                    .rpc_server
                    .as_mut()
                    .expect("checked")
                    .handle_message(from, msg);
                Self::execute_rpc_actions(sim, n, actions);
                for ServerEvent::Request { id, client, data } in events {
                    // Wake the server application thread, which echoes.
                    let c = sim.world.cost;
                    let cost = c.user_wakeup + c.copy_cost(data.len() as u32);
                    amoeba_net::Net::cpu_run(
                        sim,
                        HostId(n),
                        CpuPriority::User,
                        SimDuration::from_micros(cost),
                        move |sim| {
                            let rpc_cost = sim.world.cost.rpc_layer;
                            amoeba_net::Net::cpu_run(
                                sim,
                                HostId(n),
                                CpuPriority::Kernel,
                                SimDuration::from_micros(rpc_cost),
                                move |sim| {
                                    let Some(server) = sim.world.nodes[n].rpc_server.as_mut()
                                    else {
                                        return;
                                    };
                                    let actions = server.reply(id, client, data.clone());
                                    Self::execute_rpc_actions(sim, n, actions);
                                },
                            );
                        },
                    );
                }
                return;
            }
        }
        // Client side.
        if sim.world.nodes[n].rpc_client.is_some() {
            let actions = sim.world.nodes[n]
                .rpc_client
                .as_mut()
                .expect("checked")
                .handle_message(from, msg);
            Self::execute_rpc_actions(sim, n, actions);
        }
    }

    fn execute_rpc_actions(sim: &mut Sim, n: usize, actions: Vec<RpcAction>) {
        for action in actions {
            match action {
                RpcAction::Send { to, msg } => {
                    let from = sim.world.nodes[n].addr;
                    Self::send_packet(
                        sim,
                        n,
                        PacketDest::Process(to),
                        SimPacket::Rpc { from, msg },
                    );
                }
                RpcAction::SetTimer { after_us } => {
                    if let Some(old) = sim.world.nodes[n].rpc_timer.take() {
                        sim.cancel(old);
                    }
                    let ev = sim.schedule_in(SimDuration::from_micros(after_us), move |sim| {
                        sim.world.nodes[n].rpc_timer = None;
                        let Some(client) = sim.world.nodes[n].rpc_client.as_mut() else {
                            return;
                        };
                        let actions = client.handle_timer();
                        Self::execute_rpc_actions(sim, n, actions);
                    });
                    sim.world.nodes[n].rpc_timer = Some(ev);
                }
                RpcAction::CancelTimer => {
                    if let Some(old) = sim.world.nodes[n].rpc_timer.take() {
                        sim.cancel(old);
                    }
                }
                RpcAction::CallDone(result) => {
                    let ok = result.is_ok();
                    let cost = sim.world.cost.user_wakeup;
                    amoeba_net::Net::cpu_run(
                        sim,
                        HostId(n),
                        CpuPriority::User,
                        SimDuration::from_micros(cost),
                        move |sim| {
                            if let Some(issued) = sim.world.nodes[n].issued_at.take() {
                                if ok {
                                    let delay = (sim.now() - issued).as_micros() as f64;
                                    sim.world.metrics.rpc_delay_us.record(delay);
                                    sim.world.nodes[n].stats.rpcs_ok += 1;
                                }
                            }
                            Self::maybe_kick(sim, n);
                        },
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// SimWorld: the experimenter's facade
// ---------------------------------------------------------------------

/// A complete experiment: hosts on one Ethernet, groups, workloads, and
/// run control.
///
/// # Example
///
/// ```
/// use amoeba_kernel::{CostModel, SimWorld, Workload};
/// use amoeba_core::{GroupConfig, GroupId};
/// use amoeba_sim::SimDuration;
///
/// let mut w = SimWorld::new(CostModel::mc68030_ether10(), 42);
/// let group = GroupId(1);
/// let a = w.add_node();
/// let b = w.add_node();
/// w.create_group(a, group, GroupConfig::default());
/// w.join_group(b, group, GroupConfig::default());
/// w.run_until_ready();
/// w.set_workload(b, Workload::Sender { size: 0, remaining: 100 });
/// w.kick();
/// w.run_for(SimDuration::from_secs(2));
/// assert_eq!(w.sim.world.metrics.sends_ok.get(), 100);
/// let mean = w.sim.world.metrics.send_delay_us.mean();
/// assert!(mean > 1_000.0 && mean < 5_000.0, "null broadcast ≈ 2.7 ms, got {mean}");
/// ```
pub struct SimWorld {
    /// The underlying simulation (world exposed for inspection).
    pub sim: Simulation<KernelWorld>,
    next_addr: u64,
}

impl SimWorld {
    /// Creates an empty world on a 10 Mbit/s Ethernet.
    pub fn new(cost: CostModel, seed: u64) -> Self {
        Self::with_net_config(cost, NetConfig::ether_10mbps(), seed)
    }

    /// Creates an empty world with explicit network parameters.
    pub fn with_net_config(cost: CostModel, net_config: NetConfig, seed: u64) -> Self {
        let world = KernelWorld {
            net: Net::new(net_config, seed),
            nodes: Vec::new(),
            routes: RouteTable::new(),
            cost,
            metrics: WorldMetrics::default(),
            unready_cores: 0,
            running_apps: 0,
            join_failures: 0,
            payload_cache: HashMap::new(),
        };
        SimWorld { sim: Simulation::new(world, seed), next_addr: 1 }
    }

    /// Adds a machine and returns its node index.
    pub fn add_node(&mut self) -> usize {
        let host = self.sim.world.net.add_host();
        let addr = FlipAddress::process(self.next_addr);
        self.next_addr += 1;
        self.sim.world.routes.register_process(addr, host);
        self.sim.world.nodes.push(SimNode::new(host, addr));
        debug_assert_eq!(self.sim.world.nodes.len() - 1, host.0);
        host.0
    }

    /// Founds `group` on node `n` (it becomes the sequencer).
    pub fn create_group(&mut self, n: usize, group: GroupId, config: GroupConfig) {
        self.register_membership(n, group);
        let addr = self.sim.world.nodes[n].addr;
        let (core, actions) = GroupCore::create(group, addr, config).expect("valid config");
        self.sim.world.nodes[n].core = Some(core);
        self.sim.world.nodes[n].group = Some(group);
        // Counted before executing the actions: a creator's
        // JoinDone(Ok) fires synchronously and settles this.
        Kernel::admission_begin(&mut self.sim, n);
        Kernel::execute_group_actions(&mut self.sim, n, actions);
    }

    /// Starts `JoinGroup` for node `n` (runs asynchronously; see
    /// [`SimWorld::run_until_ready`]).
    pub fn join_group(&mut self, n: usize, group: GroupId, config: GroupConfig) {
        Kernel::admit_join(&mut self.sim, n, group, config);
    }

    /// Like [`SimWorld::join_group`], but the join request is issued at
    /// simulated instant `at_us` instead of time zero. Large worlds
    /// need this: a thousand simultaneous join requests overflow the
    /// sequencer's 32-slot receive ring faster than retries drain it,
    /// so admission never converges. Staggering the joins (a few
    /// hundred microseconds apart) keeps the ring shallow.
    pub fn join_group_at(&mut self, n: usize, group: GroupId, config: GroupConfig, at_us: u64) {
        // Counted as unready from scheduling time, so a
        // `run_until_ready` issued before `at_us` waits for this
        // admission too (`admission_begin` in `admit_join` is then a
        // no-op — the flag is already set).
        Kernel::admission_begin(&mut self.sim, n);
        self.sim.schedule_at(SimTime::from_micros(at_us), move |sim| {
            Kernel::admit_join(sim, n, group, config);
        });
    }

    fn register_membership(&mut self, n: usize, group: GroupId) {
        Kernel::register_membership(&mut self.sim, n, group);
    }

    /// Configures a node's application behaviour (set before
    /// [`SimWorld::kick`]). `Workload::Sender` desugars to installing
    /// an [`amoeba_app::SenderApp`] — the hard-coded sender loop of
    /// earlier revisions is gone; only the RPC baseline arms remain
    /// enum-driven.
    pub fn set_workload(&mut self, n: usize, workload: Workload) {
        match workload {
            Workload::Sender { size, remaining } => {
                self.set_app(n, Box::new(SenderApp::new(size, remaining)));
                return;
            }
            Workload::RpcPinger { .. } => {
                let addr = self.sim.world.nodes[n].addr;
                self.sim.world.nodes[n].rpc_client = Some(RpcClient::new(addr));
                self.mark_ready(n);
            }
            Workload::RpcEcho => {
                let addr = self.sim.world.nodes[n].addr;
                self.sim.world.nodes[n].rpc_server = Some(RpcServer::new(addr));
                self.mark_ready(n);
            }
            Workload::Idle => {}
        }
        self.sim.world.nodes[n].workload = workload;
    }

    /// Flips `ready` while keeping the admission counter exact.
    fn mark_ready(&mut self, n: usize) {
        Kernel::admission_settle(&mut self.sim, n);
        self.sim.world.nodes[n].ready = true;
    }

    /// Installs an event-driven application on node `n`. The app
    /// starts (`on_start`) at the next [`SimWorld::kick`], or at
    /// admission if the world was already kicked.
    pub fn set_app(&mut self, n: usize, app: Box<dyn GroupApp>) {
        let w = &mut self.sim.world;
        if w.nodes[n].app.is_none() || w.nodes[n].app_done {
            w.running_apps += 1;
        }
        let node = &mut w.nodes[n];
        node.app = Some(app);
        node.app_started = false;
        node.app_done = false;
        node.pending_sends.clear();
    }

    /// Removes and returns node `n`'s application (typically after
    /// [`SimWorld::run_until_apps_done`], to inspect final state).
    pub fn take_app(&mut self, n: usize) -> Option<Box<dyn GroupApp>> {
        let w = &mut self.sim.world;
        if w.nodes[n].app.is_some() && !w.nodes[n].app_done {
            w.running_apps -= 1;
        }
        w.nodes[n].app.take()
    }

    /// Whether node `n`'s app is still running (installed, not yet
    /// stopped/left/crashed).
    pub fn app_running(&self, n: usize) -> bool {
        let node = &self.sim.world.nodes[n];
        node.app.is_some() && !node.app_done
    }

    /// Crashes node `n` mid-run: its protocol entities vanish without a
    /// leave, its traffic blackholes, and its app (if any) ends. The
    /// survivors' failure detection and `ResetGroup` are the recovery
    /// story — this is the simulated counterpart of the live runtime's
    /// `GroupHandle::crash`.
    pub fn crash(&mut self, n: usize) {
        Apps::crash_node(&mut self.sim, n);
    }

    /// Schedules a crash of node `n` at absolute simulated instant
    /// `at_us` (chaos schedules script failures this way — including
    /// the sequencer's).
    pub fn crash_at(&mut self, n: usize, at_us: u64) {
        self.sim.schedule_at(SimTime::from_micros(at_us), move |sim| {
            Apps::crash_node(sim, n);
        });
    }

    /// Restarts a crashed node at absolute simulated instant `at_us`:
    /// its address becomes routable again and a fresh `JoinGroup` runs
    /// against whatever incarnation of `group` is alive then. The node
    /// rejoins as a *new* member (ids are never reused); any app it
    /// hosted before the crash stays ended — the restarted node
    /// participates in the protocol as a passive receiver.
    pub fn restart_at(&mut self, n: usize, group: GroupId, config: GroupConfig, at_us: u64) {
        self.sim.schedule_at(SimTime::from_micros(at_us), move |sim| {
            if sim.world.nodes[n].core.is_some() {
                return; // never crashed (or already restarted)
            }
            let host = HostId(n);
            let addr = sim.world.nodes[n].addr;
            sim.world.routes.register_process(addr, host);
            let gaddr = group.flip_address();
            sim.world.routes.register_group_member(gaddr, host);
            sim.world.routes.set_group_mcast(gaddr, group.0 as u32);
            sim.world.net.join_multicast(host, McastAddr(group.0 as u32));
            let (core, actions) = GroupCore::join(group, addr, config).expect("valid config");
            sim.world.nodes[n].core = Some(core);
            sim.world.nodes[n].group = Some(group);
            sim.world.nodes[n].ready = false;
            Kernel::admission_begin(sim, n);
            Kernel::execute_group_actions(sim, n, actions);
        });
    }

    /// Installs a deterministic fault schedule on the simulated
    /// delivery path (DESIGN.md §9): per-link drop/duplicate/reorder
    /// plus scheduled partitions with heals, all driven by `seed`.
    /// Without this call the network is the paper's perfect Ethernet.
    pub fn set_chaos(&mut self, plan: amoeba_net::ChaosPlan, seed: u64) {
        self.sim.world.net.set_chaos(plan, seed);
    }

    /// What the chaos layer did so far (zeroes when chaos is off).
    pub fn chaos_stats(&self) -> amoeba_net::ChaosStats {
        self.sim.world.net.chaos_stats()
    }

    /// Runs the simulation until every node with a group core has
    /// completed admission (panics after simulated 60 s — joins are
    /// sub-millisecond on a quiet network).
    pub fn run_until_ready(&mut self) {
        // Bounded stepping (not `run_while`): periodic protocol timers
        // keep the queue non-empty forever, so a formation that cannot
        // converge must be cut off by simulated time, not queue
        // exhaustion.
        let deadline = self.sim.now() + SimDuration::from_secs(60);
        while self.sim.world.unready_cores > 0 {
            assert_eq!(
                self.sim.world.join_failures, 0,
                "group formation failed: JoinGroup gave up on {} node(s)",
                self.sim.world.join_failures
            );
            assert!(
                self.sim.now() <= deadline && self.sim.step(),
                "group formation did not converge within 60 simulated seconds"
            );
        }
        assert_eq!(
            self.sim.world.join_failures, 0,
            "group formation failed: JoinGroup gave up on {} node(s)",
            self.sim.world.join_failures
        );
    }

    /// Starts all configured workloads and installed apps.
    pub fn kick(&mut self) {
        for n in 0..self.sim.world.nodes.len() {
            Apps::maybe_start(&mut self.sim, n);
            Kernel::maybe_kick(&mut self.sim, n);
        }
    }

    /// Runs for `d` simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let until = self.sim.now() + d;
        self.sim.run_until(until);
    }

    /// Runs until every installed app has ended (stopped, left or
    /// crashed), or `limit` of simulated time has passed. Returns
    /// whether all apps finished.
    pub fn run_until_apps_done(&mut self, limit: SimDuration) -> bool {
        let deadline = self.sim.now() + limit;
        loop {
            if self.sim.world.running_apps == 0 {
                return true;
            }
            if self.sim.now() > deadline || !self.sim.step() {
                return false;
            }
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The fraction of wall time the Ethernet carried bits, since start.
    pub fn utilization(&self) -> f64 {
        self.sim.world.net.utilization(self.sim.now())
    }

    /// Resets throughput counters (for measuring after warm-up).
    pub fn snapshot_sends(&self) -> u64 {
        self.sim.world.metrics.sends_ok.get()
    }
}
