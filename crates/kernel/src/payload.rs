//! What travels inside simulated Ethernet frames.

use amoeba_core::WireMsg;
use amoeba_flip::FlipAddress;
use amoeba_rpc::RpcMsg;

/// A logical packet above the FLIP layer.
#[derive(Debug, Clone)]
pub enum SimPacket {
    /// Group protocol traffic.
    Group {
        /// Sending process.
        from: FlipAddress,
        /// The packet.
        msg: WireMsg,
    },
    /// RPC traffic (the baseline experiments).
    Rpc {
        /// Sending process.
        from: FlipAddress,
        /// The packet.
        msg: RpcMsg,
    },
}

impl SimPacket {
    /// The sending process address.
    pub fn from(&self) -> FlipAddress {
        match self {
            SimPacket::Group { from, .. } | SimPacket::Rpc { from, .. } => *from,
        }
    }

    /// Size above the FLIP layer in bytes (for wire and copy costs).
    pub fn wire_size(&self) -> u32 {
        match self {
            SimPacket::Group { msg, .. } => msg.wire_size(),
            SimPacket::Rpc { msg, .. } => msg.wire_size(),
        }
    }
}

/// One FLIP fragment of a [`SimPacket`]. The simulator never serializes
/// payload bytes: each fragment carries a (cheap, `Bytes`-backed) clone
/// of the whole logical packet, and reassembly counts fragments — only
/// *timing* is simulated at this layer, byte-exact framing is covered by
/// the real codecs' unit tests.
#[derive(Debug, Clone)]
pub struct SimFrag {
    /// The logical packet this fragment belongs to.
    pub packet: SimPacket,
    /// Sender-local fragment-stream id.
    pub msg_id: u64,
    /// Fragment index.
    pub index: u16,
    /// Total fragments in the packet.
    pub count: u16,
}
