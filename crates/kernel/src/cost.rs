//! The calibrated cost model: what each protocol layer costs on the
//! paper's hardware (20-MHz MC68030, Lance Ethernet interface).
//!
//! The paper's Table 3 breaks the 2740 µs critical path of a null
//! SendToGroup (group of 2, PB) into per-layer costs, and §4 supplies
//! further anchors: the group layer costs 740 µs; the sequencer's
//! per-message processing is "almost 800 microseconds" (bounding
//! throughput by 1250/s, with 815/s observed once the co-located member
//! is scheduled too); each resilience acknowledgement adds ≈ 600 µs;
//! most user-level time is the context switch to the receiving thread.
//! The constants here are fitted to those anchors; the experiments in
//! `amoeba-bench` verify the fit end to end.

use amoeba_core::Body;
use serde::{Deserialize, Serialize};

/// Per-layer CPU costs in microseconds, plus per-byte copy costs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// U1: `SendToGroup` entry — trap, validation, thread bookkeeping.
    pub user_send_entry: u64,
    /// Context switch waking a blocked application thread (the paper:
    /// "most of the time spent in user space is the context switch").
    pub user_wakeup: u64,
    /// Handing one more event to an already-running application thread.
    pub user_warm: u64,
    /// G1: group layer, send side, per message.
    pub group_send: u64,
    /// G2: group layer at the sequencer, per stamped message.
    pub group_seq: u64,
    /// G3: group layer, receive side, per delivered message.
    pub group_rx: u64,
    /// Group layer handling of short control packets (accepts, acks,
    /// status, nacks).
    pub group_ctl: u64,
    /// F: FLIP layer, per packet, send side.
    pub flip_send: u64,
    /// F: FLIP layer, per packet, receive side.
    pub flip_rx: u64,
    /// E (tx): Ethernet driver work to hand one frame to the Lance.
    pub ether_tx: u64,
    /// E (rx): taking the interrupt plus driver work per received frame.
    pub ether_rx: u64,
    /// Extra send-side work per destination of a multicast (the paper's
    /// "each node adds 4 microseconds to the delay").
    pub mcast_per_dest: u64,
    /// Marginal group-layer cost of each message *beyond the first*
    /// carried in a batch frame (`BcastBatch` unpacking at a member,
    /// `BcastReqBatch` stamping at the sequencer). The first message
    /// pays the full per-packet cost (`group_rx`/`group_seq`); the rest
    /// pay only the in-layer work — header parse, history insert,
    /// ordering bookkeeping — with no driver/FLIP/interrupt share.
    /// That asymmetry is the whole batching argument (DESIGN.md §6).
    pub group_batch_item: u64,
    /// memcpy cost in nanoseconds per byte (MC68030-era memory speed).
    pub copy_ns_per_byte: u64,
    /// RPC layer per request/reply at each end (baseline comparison).
    pub rpc_layer: u64,
    /// Cost charged for running a timer handler.
    pub timer_dispatch: u64,
}

impl CostModel {
    /// The paper's testbed: 20-MHz MC68030s on 10 Mbit/s Ethernet.
    ///
    /// Fitted anchors (see `EXPERIMENTS.md` for measured values):
    /// null-broadcast delay ≈ 2.7 ms for a group of 2 and ≈ 2.8 ms for
    /// 30 members; group-layer total 740 µs; sequencer-bound throughput
    /// ≈ 815 msg/s; ≈ 600 µs per resilience acknowledgement.
    pub fn mc68030_ether10() -> Self {
        CostModel {
            user_send_entry: 140,
            user_wakeup: 360,
            user_warm: 140,
            group_send: 200,
            group_seq: 250,
            group_rx: 290,
            group_ctl: 240,
            flip_send: 150,
            flip_rx: 150,
            ether_tx: 150,
            ether_rx: 160,
            mcast_per_dest: 4,
            group_batch_item: 70,
            copy_ns_per_byte: 160,
            rpc_layer: 140,
            timer_dispatch: 20,
        }
    }

    /// Cost of copying `bytes` once (µs, rounded down).
    pub fn copy_cost(&self, bytes: u32) -> u64 {
        u64::from(bytes) * self.copy_ns_per_byte / 1_000
    }

    /// Group-layer cost of processing one fully reassembled packet at a
    /// node (sequencer role considered). Batch frames charge the full
    /// per-packet cost once plus [`CostModel::group_batch_item`] per
    /// additional message they carry.
    pub fn group_layer_rx(&self, is_sequencer: bool, body: &Body) -> u64 {
        match body {
            Body::BcastReq { .. } | Body::BcastOrig { .. } if is_sequencer => self.group_seq,
            Body::BcastReqBatch { reqs } if is_sequencer => {
                self.group_seq + self.group_batch_item * reqs.len().saturating_sub(1) as u64
            }
            Body::BcastData { .. } | Body::Tentative { .. } => self.group_rx,
            Body::BcastBatch { items } => {
                self.group_rx + self.group_batch_item * items.len().saturating_sub(1) as u64
            }
            Body::BcastReq { .. } | Body::BcastOrig { .. } | Body::BcastReqBatch { .. } => {
                self.group_ctl
            }
            _ => self.group_ctl,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::mc68030_ether10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_core::Seqno;

    #[test]
    fn copy_cost_scales_linearly() {
        let c = CostModel::mc68030_ether10();
        assert_eq!(c.copy_cost(0), 0);
        assert_eq!(c.copy_cost(1_000), c.copy_ns_per_byte);
        assert_eq!(c.copy_cost(8_000), 8 * c.copy_ns_per_byte);
    }

    #[test]
    fn group_layer_distinguishes_sequencer_work() {
        let c = CostModel::mc68030_ether10();
        let req = Body::RetransReq { from: Seqno(1), to: Seqno(2) };
        assert_eq!(c.group_layer_rx(true, &req), c.group_ctl);
        let breq = Body::BcastReq { sender_seq: 1, payload: bytes::Bytes::new() };
        assert_eq!(c.group_layer_rx(true, &breq), c.group_seq);
        assert_eq!(c.group_layer_rx(false, &breq), c.group_ctl);
    }

    #[test]
    fn batch_frames_amortize_the_per_packet_cost() {
        use amoeba_core::{BatchItem, MemberId, Sequenced, SequencedKind};
        let c = CostModel::mc68030_ether10();
        let item = |s: u64| {
            BatchItem::Entry(Sequenced {
                seqno: Seqno(s),
                kind: SequencedKind::App {
                    origin: MemberId(1),
                    sender_seq: s,
                    payload: bytes::Bytes::new(),
                },
            })
        };
        let batch8 = Body::BcastBatch { items: (1..=8).map(item).collect() };
        let one = Body::BcastData {
            entry: Sequenced {
                seqno: Seqno(1),
                kind: SequencedKind::App {
                    origin: MemberId(1),
                    sender_seq: 1,
                    payload: bytes::Bytes::new(),
                },
            },
        };
        let batched = c.group_layer_rx(false, &batch8);
        let unbatched = 8 * c.group_layer_rx(false, &one);
        assert!(batched < unbatched, "batched {batched} vs 8 singles {unbatched}");
        // Marginal items must still cost something — batching is an
        // amortization, not a free lunch.
        assert!(batched > c.group_layer_rx(false, &one));
    }

    #[test]
    fn table3_group_layer_totals_740us() {
        // Paper Table 3: "The cost for the group protocol itself is 740
        // microseconds" on the G1 + G2 + G3 critical path.
        let c = CostModel::mc68030_ether10();
        assert_eq!(c.group_send + c.group_seq + c.group_rx, 740);
    }
}
