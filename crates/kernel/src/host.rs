//! Hosting [`GroupApp`]s inside the discrete-event kernel.
//!
//! Apps run *inline* in the simulation: every callback executes at a
//! simulated instant, costs nothing on the simulated CPUs (an app's
//! own compute is not part of the calibrated 1996 model — the protocol
//! and copy costs are), and timers fire in simulated time. Mutating
//! [`Ctx`] calls are buffered during the callback and applied when it
//! returns, so a callback observes a consistent world.
//!
//! This is the simulated half of the portable application API
//! (DESIGN.md §8, repository root); `amoeba-runtime`'s `LiveHost` is
//! the other half.

use std::time::Duration;

use amoeba_app::cmd::{AppCmd, BufferedCtx, HostView};
use amoeba_app::{AppEvent, GroupApp, TimerId};
use amoeba_core::{GroupConfig, GroupId, GroupInfo};
use amoeba_net::{HostId, McastAddr};
use amoeba_sim::{SimDuration, Simulation};

use crate::cost::CostModel;
use crate::world::{Kernel, KernelWorld, SimWorld};
use crate::node::Workload;

type Sim = Simulation<KernelWorld>;

/// Which app callback to invoke.
pub(crate) enum AppCall {
    /// `on_start`.
    Start,
    /// `on_event`.
    Event(AppEvent),
    /// `on_timer`.
    Timer(TimerId),
}

/// What a simulated app reads synchronously during a callback (the
/// buffering of its writes lives in [`BufferedCtx`], shared with the
/// live host).
struct SimView<'a> {
    sim: &'a Sim,
    n: usize,
}

impl HostView for SimView<'_> {
    fn now(&self) -> Duration {
        let since = self.sim.now().since(self.sim.world.nodes[self.n].app_start);
        Duration::from_micros(since.as_micros())
    }

    fn info(&self) -> GroupInfo {
        self.sim.world.nodes[self.n]
            .core
            .as_ref()
            .expect("a hosted app's node has a group core")
            .info()
    }

    fn config(&self) -> GroupConfig {
        self.sim.world.nodes[self.n]
            .core
            .as_ref()
            .expect("a hosted app's node has a group core")
            .config()
            .clone()
    }
}

/// Namespace for the kernel's app-hosting plumbing (the application
/// side of [`Kernel`]).
pub(crate) struct Apps;

impl Apps {
    /// Runs one app callback inline, then applies its buffered
    /// requests and re-examines the send window.
    pub(crate) fn call(sim: &mut Sim, n: usize, call: AppCall) {
        if sim.world.nodes[n].app_done {
            return;
        }
        let Some(mut app) = sim.world.nodes[n].app.take() else { return };
        let mut ctx = BufferedCtx::new(SimView { sim, n });
        match call {
            AppCall::Start => app.on_start(&mut ctx),
            AppCall::Event(ev) => app.on_event(&mut ctx, ev),
            AppCall::Timer(id) => app.on_timer(&mut ctx, id),
        }
        let cmds = ctx.cmds;
        sim.world.nodes[n].app = Some(app);
        Self::apply(sim, n, cmds);
        Kernel::maybe_kick(sim, n);
    }

    fn apply(sim: &mut Sim, n: usize, cmds: Vec<AppCmd>) {
        for cmd in cmds {
            match cmd {
                AppCmd::Send(payload) => {
                    sim.world.nodes[n].pending_sends.push_back(payload);
                }
                AppCmd::Reset(min_members) => {
                    if let Some(core) = sim.world.nodes[n].core.as_mut() {
                        let actions = core.reset(min_members);
                        Kernel::execute_group_actions(sim, n, actions);
                    }
                }
                AppCmd::Leave => {
                    // LeaveDone (in `execute_group_actions`) ends the app.
                    // Terminal: later requests from the same callback
                    // are void (identical on both hosts).
                    if let Some(core) = sim.world.nodes[n].core.as_mut() {
                        let actions = core.leave();
                        Kernel::execute_group_actions(sim, n, actions);
                    }
                    break;
                }
                AppCmd::Crash => {
                    Self::crash_node(sim, n);
                    break;
                }
                AppCmd::SetTimer(id, after) => {
                    if let Some(old) = sim.world.nodes[n].app_timers.remove(&id) {
                        sim.cancel(old);
                    }
                    let after = SimDuration::from_micros(after.as_micros() as u64);
                    let ev = sim.schedule_in(after, move |sim| {
                        sim.world.nodes[n].app_timers.remove(&id);
                        Apps::call(sim, n, AppCall::Timer(id));
                    });
                    sim.world.nodes[n].app_timers.insert(id, ev);
                }
                AppCmd::CancelTimer(id) => {
                    if let Some(ev) = sim.world.nodes[n].app_timers.remove(&id) {
                        sim.cancel(ev);
                    }
                }
                AppCmd::Stop => {
                    Self::finish(sim, n);
                    break;
                }
            }
        }
    }

    /// Starts node `n`'s app if it is installed, admitted, and not yet
    /// started.
    pub(crate) fn maybe_start(sim: &mut Sim, n: usize) {
        let now = sim.now();
        let node = &mut sim.world.nodes[n];
        if !node.ready || node.app.is_none() || node.app_started || node.app_done {
            return;
        }
        node.app_started = true;
        node.app_start = now;
        Self::call(sim, n, AppCall::Start);
    }

    /// Ends node `n`'s app: no further callbacks, pending timers and
    /// queued sends are dropped. The protocol entity keeps running.
    pub(crate) fn finish(sim: &mut Sim, n: usize) {
        let node = &mut sim.world.nodes[n];
        if node.app.is_none() || node.app_done {
            return;
        }
        node.app_done = true;
        node.pending_sends.clear();
        sim.world.running_apps -= 1;
        Self::cancel_app_timers(sim, n);
    }

    fn cancel_app_timers(sim: &mut Sim, n: usize) {
        let armed: Vec<_> = sim.world.nodes[n].app_timers.drain().map(|(_, ev)| ev).collect();
        for ev in armed {
            sim.cancel(ev);
        }
    }

    /// Crashes node `n`: every protocol entity vanishes without a
    /// leave, its address becomes unroutable, and its app ends.
    pub(crate) fn crash_node(sim: &mut Sim, n: usize) {
        Self::finish(sim, n);
        // Protocol timers die with the kernel.
        let armed: Vec<_> = sim.world.nodes[n].proto_timers.drain().map(|(_, ev)| ev).collect();
        for ev in armed {
            sim.cancel(ev);
        }
        if let Some(ev) = sim.world.nodes[n].rpc_timer.take() {
            sim.cancel(ev);
        }
        // The machine goes silent: unroutable, deaf to its multicasts.
        let addr = sim.world.nodes[n].addr;
        sim.world.routes.unregister(addr);
        if let Some(group) = sim.world.nodes[n].group {
            sim.world.routes.unregister_group_member(group.flip_address(), HostId(n));
            sim.world.net.leave_multicast(HostId(n), McastAddr(group.0 as u32));
        }
        Kernel::admission_settle(sim, n);
        let node = &mut sim.world.nodes[n];
        node.core = None;
        node.rpc_client = None;
        node.rpc_server = None;
        node.workload = Workload::Idle;
        node.ready = false;
        node.issuing = false;
        node.in_flight = 0;
        node.issued_q.clear();
    }
}

// ---------------------------------------------------------------------
// SimHost: the experimenter's facade for app-driven scenarios
// ---------------------------------------------------------------------

/// Hosts a set of [`GroupApp`]s as one simulated group: the first app
/// added founds the group (and sequences), the rest join; once every
/// member is admitted the apps start together, and the run ends when
/// every app has stopped (or the simulated-time limit expires).
///
/// This is the simulated backend of the portable application API — the
/// same boxed apps run unmodified under `amoeba-runtime`'s `LiveHost`
/// (the facade crate's `amoeba::app::run` picks between them).
///
/// # Example
///
/// ```
/// use amoeba_app::SenderApp;
/// use amoeba_core::{GroupConfig, GroupId};
/// use amoeba_kernel::SimHost;
///
/// let mut host = SimHost::new(42, GroupId(1), GroupConfig::default());
/// host.add_app(Box::new(SenderApp::new(0, 10))); // founds + sequences
/// host.add_app(Box::new(SenderApp::new(0, 10))); // joins
/// let world = host.run().into_world();
/// assert_eq!(world.sim.world.metrics.sends_ok.get(), 20);
/// ```
pub struct SimHost {
    world: SimWorld,
    group: GroupId,
    config: GroupConfig,
    nodes: Vec<usize>,
    apps: Vec<Box<dyn GroupApp>>,
    limit: SimDuration,
}

/// A completed [`SimHost`] run: the apps (in `add_app` order, for
/// final-state inspection) and the finished world (for metrics).
pub struct SimRun {
    /// The hosted apps, in the order they were added.
    pub apps: Vec<Box<dyn GroupApp>>,
    /// The finished world.
    pub world: SimWorld,
    /// Whether every app ended before the simulated-time limit.
    pub all_done: bool,
}

impl SimRun {
    /// Drops the apps and keeps the world.
    pub fn into_world(self) -> SimWorld {
        self.world
    }
}

impl SimHost {
    /// A host on the paper's testbed model (20-MHz MC68030s, 10 Mbit/s
    /// Ethernet) with a 600-second simulated-time budget.
    pub fn new(seed: u64, group: GroupId, config: GroupConfig) -> Self {
        Self::with_cost(CostModel::mc68030_ether10(), seed, group, config)
    }

    /// A host with an explicit cost model.
    pub fn with_cost(cost: CostModel, seed: u64, group: GroupId, config: GroupConfig) -> Self {
        SimHost {
            world: SimWorld::new(cost, seed),
            group,
            config,
            nodes: Vec::new(),
            apps: Vec::new(),
            limit: SimDuration::from_secs(600),
        }
    }

    /// Caps the run at `limit` simulated time (default 600 s).
    pub fn set_limit(&mut self, limit: SimDuration) {
        self.limit = limit;
    }

    /// Adds a member running `app`; returns its node index (also its
    /// join order: the first app founds the group and sequences).
    pub fn add_app(&mut self, app: Box<dyn GroupApp>) -> usize {
        let n = self.world.add_node();
        self.nodes.push(n);
        self.apps.push(app);
        n
    }

    /// Forms the group, starts every app once all members are
    /// admitted, and runs until every app has ended (or the limit
    /// expires).
    pub fn run(mut self) -> SimRun {
        assert!(!self.apps.is_empty(), "SimHost::run needs at least one app");
        for (i, &n) in self.nodes.iter().enumerate() {
            if i == 0 {
                self.world.create_group(n, self.group, self.config.clone());
            } else {
                self.world.join_group(n, self.group, self.config.clone());
            }
        }
        self.world.run_until_ready();
        for (&n, app) in self.nodes.iter().zip(self.apps.drain(..)) {
            self.world.set_app(n, app);
        }
        self.world.kick();
        let all_done = self.world.run_until_apps_done(self.limit);
        let apps = self
            .nodes
            .iter()
            .map(|&n| self.world.take_app(n).expect("app installed above"))
            .collect();
        SimRun { apps, world: self.world, all_done }
    }
}
