//! Integration tests of the simulated kernel world: hardware effects
//! (ring overflow, wire utilization, CPU accounting) and cross-group
//! isolation that the paper's evaluation relies on.

use amoeba_core::{GroupConfig, GroupId, Method};
use amoeba_kernel::{CostModel, SimWorld, Workload};
use amoeba_net::HostId;
use amoeba_sim::SimDuration;

fn build(members: usize, config: &GroupConfig, seed: u64) -> SimWorld {
    let mut w = SimWorld::new(CostModel::mc68030_ether10(), seed);
    let group = GroupId(1);
    for _ in 0..members {
        w.add_node();
    }
    w.create_group(0, group, config.clone());
    for n in 1..members {
        w.join_group(n, group, config.clone());
    }
    w.run_until_ready();
    w
}

#[test]
fn large_message_fanin_degrades_through_loss_recovery() {
    // The paper attributes the ≥4-KB collapse to the Lance's 32 buffers;
    // in this model the wire itself serializes large frames slower than
    // the interrupt path drains them, so the collapse manifests through
    // the sibling mechanisms: saturated sequencer CPU, send timeouts,
    // and retransmission traffic. The *observable* — throughput falls
    // as 4-KB senders are added — is asserted by the fig4 harness; here
    // we assert the recovery machinery visibly engaged.
    let config = GroupConfig { method: Method::Pb, ..GroupConfig::default() };
    let mut w = build(14, &config, 5);
    for n in 0..14 {
        w.set_workload(n, Workload::Sender { size: 4_096, remaining: u64::MAX });
    }
    w.kick();
    w.run_for(SimDuration::from_secs(5));
    let retries: u64 = (0..14)
        .filter_map(|n| w.sim.world.nodes[n].core.as_ref())
        .map(|c| c.stats.send_retries)
        .sum();
    let aborts: u64 =
        (0..14).map(|n| w.sim.world.net.host(HostId(n)).nic.stats.tx_aborted).sum();
    let drops = w.sim.world.nodes[0].core.as_ref().expect("seq").stats.flow_control_drops;
    assert!(
        retries + aborts + drops > 0,
        "under 4-KB fan-in some loss-recovery path must engage \
         (retries={retries} aborts={aborts} flow_drops={drops})"
    );
    // The protocol survives: messages keep completing.
    assert!(w.sim.world.metrics.sends_ok.get() > 100);
}

#[test]
fn ack_implosion_without_stagger_causes_loss_and_recovery() {
    // §2.2's ack-implosion argument, demonstrated: disable the status
    // stagger and have 29 members answer one sync round simultaneously.
    // The burst saturates the receiver (ring pinned at its cap) and the
    // wire (collision storm); Ethernet's exponential backoff spreads
    // the survivors out, and the protocol completes every send anyway.
    let config = GroupConfig {
        method: Method::Pb,
        status_stagger_us: 0, // everyone answers a sync round at once
        sync_interval_us: 200_000,
        ..GroupConfig::default()
    };
    let net_config =
        amoeba_net::NetConfig { rx_ring_cap: 8, ..amoeba_net::NetConfig::ether_10mbps() };
    let mut w = SimWorld::with_net_config(CostModel::mc68030_ether10(), net_config, 55);
    let group = GroupId(1);
    for _ in 0..30 {
        w.add_node();
    }
    w.create_group(0, group, config.clone());
    for n in 1..30 {
        w.join_group(n, group, config.clone());
    }
    w.run_until_ready();
    w.set_workload(29, Workload::Sender { size: 0, remaining: 2_000 });
    w.kick();
    w.run_for(SimDuration::from_secs(10));
    let seq_nic = w.sim.world.net.host(HostId(0)).nic.stats;
    assert_eq!(
        seq_nic.rx_ring_peak, 8,
        "the burst must fill the sequencer's receive ring to its cap"
    );
    let collisions = w.sim.world.net.medium.stats.collisions;
    assert!(
        collisions > 1_000,
        "29 simultaneous repliers × 36 rounds must collide massively (got {collisions})"
    );
    // And the protocol shrugs it off: every send still completes.
    assert_eq!(w.sim.world.metrics.sends_ok.get(), 2_000);
}

#[test]
fn zero_byte_traffic_never_overflows_the_ring() {
    let config = GroupConfig { method: Method::Pb, ..GroupConfig::default() };
    let mut w = build(8, &config, 6);
    for n in 0..8 {
        w.set_workload(n, Workload::Sender { size: 0, remaining: u64::MAX });
    }
    w.kick();
    w.run_for(SimDuration::from_secs(3));
    let seq_nic = &w.sim.world.net.host(HostId(0)).nic.stats;
    assert_eq!(
        seq_nic.rx_overflow, 0,
        "one-packet messages drain faster than they arrive"
    );
}

#[test]
fn sequencer_cpu_is_the_hot_spot_under_load() {
    let config = GroupConfig { method: Method::Pb, ..GroupConfig::default() };
    let mut w = build(6, &config, 7);
    for n in 0..6 {
        w.set_workload(n, Workload::Sender { size: 0, remaining: u64::MAX });
    }
    w.kick();
    w.run_for(SimDuration::from_secs(3));
    let busy = |n: usize| w.sim.world.net.host(HostId(n)).cpu.stats.busy_us;
    let seq = busy(0);
    for n in 1..6 {
        assert!(
            seq > busy(n),
            "the sequencer (host0: {seq} µs) must out-work member {n} ({} µs)",
            busy(n)
        );
    }
    // And it should be near saturation — that's the 815/s story.
    let elapsed = w.now().as_micros();
    assert!(
        seq as f64 / elapsed as f64 > 0.8,
        "sequencer CPU only {:.0}% busy under full load",
        100.0 * seq as f64 / elapsed as f64
    );
}

#[test]
fn disjoint_groups_do_not_cross_deliver() {
    let config = GroupConfig { method: Method::Pb, ..GroupConfig::default() };
    let mut w = SimWorld::new(CostModel::mc68030_ether10(), 8);
    for _ in 0..4 {
        w.add_node();
    }
    w.create_group(0, GroupId(1), config.clone());
    w.join_group(1, GroupId(1), config.clone());
    w.create_group(2, GroupId(2), config.clone());
    w.join_group(3, GroupId(2), config.clone());
    w.run_until_ready();
    w.set_workload(1, Workload::Sender { size: 0, remaining: 20 });
    w.kick();
    w.run_for(SimDuration::from_secs(2));
    assert!(w.sim.world.nodes[0].stats.deliveries >= 20, "group 1 delivers");
    // Group 2's members share the wire but hear nothing of group 1's
    // messages (their only deliveries are their own join events).
    assert!(w.sim.world.nodes[2].stats.deliveries <= 1);
    assert!(w.sim.world.nodes[3].stats.deliveries <= 1);
}

#[test]
fn shared_wire_contention_slows_both_groups() {
    let config = GroupConfig { method: Method::Pb, ..GroupConfig::default() };
    // One group alone…
    let mut solo = build(2, &config, 9);
    for n in 0..2 {
        solo.set_workload(n, Workload::Sender { size: 1_024, remaining: u64::MAX });
    }
    solo.kick();
    solo.run_for(SimDuration::from_secs(1));
    let before = solo.snapshot_sends();
    solo.run_for(SimDuration::from_secs(3));
    let solo_rate = (solo.snapshot_sends() - before) as f64 / 3.0;

    // …versus four groups contending for the same Ethernet.
    let mut crowd = SimWorld::new(CostModel::mc68030_ether10(), 9);
    for _ in 0..8 {
        crowd.add_node();
    }
    for g in 0..4 {
        let gid = GroupId(1 + g as u64);
        crowd.create_group(g * 2, gid, config.clone());
        crowd.join_group(g * 2 + 1, gid, config.clone());
    }
    crowd.run_until_ready();
    for n in 0..8 {
        crowd.set_workload(n, Workload::Sender { size: 1_024, remaining: u64::MAX });
    }
    crowd.kick();
    crowd.run_for(SimDuration::from_secs(1));
    let before = crowd.snapshot_sends();
    crowd.run_for(SimDuration::from_secs(3));
    let crowd_total = (crowd.snapshot_sends() - before) as f64 / 3.0;
    let per_group = crowd_total / 4.0;
    assert!(
        per_group < solo_rate,
        "sharing the wire must cost each group something: {per_group:.0}/s \
         per group vs {solo_rate:.0}/s alone"
    );
    assert!(
        crowd_total > solo_rate,
        "but aggregate throughput still grows with more groups"
    );
    assert!(crowd.utilization() > 0.2, "the wire should be visibly busy");
}

#[test]
fn mixed_workloads_share_a_host_cleanly() {
    // RPC traffic and group traffic coexist on one wire.
    let config = GroupConfig { method: Method::Pb, ..GroupConfig::default() };
    let mut w = SimWorld::new(CostModel::mc68030_ether10(), 10);
    for _ in 0..4 {
        w.add_node();
    }
    w.create_group(0, GroupId(1), config.clone());
    w.join_group(1, GroupId(1), config);
    let server_addr = w.sim.world.nodes[3].addr;
    w.set_workload(3, Workload::RpcEcho);
    w.run_until_ready();
    w.set_workload(1, Workload::Sender { size: 0, remaining: 200 });
    w.set_workload(2, Workload::RpcPinger { size: 0, remaining: 200, server: server_addr });
    w.kick();
    w.run_for(SimDuration::from_secs(5));
    assert_eq!(w.sim.world.metrics.sends_ok.get(), 200);
    assert_eq!(w.sim.world.nodes[2].stats.rpcs_ok, 200);
}
