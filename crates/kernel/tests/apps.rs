//! App hosting inside the simulated kernel: `SimHost` end to end, the
//! `Workload::Sender` → `SenderApp` desugaring, and crash semantics.

use amoeba_app::{AppEvent, Ctx, GroupApp, SenderApp};
use amoeba_core::{GroupConfig, GroupEvent, GroupId};
use amoeba_kernel::{CostModel, SimHost, SimWorld, Workload};
use amoeba_sim::SimDuration;

#[test]
fn sim_host_forms_runs_and_returns_apps() {
    let mut host = SimHost::new(42, GroupId(1), GroupConfig::default());
    host.add_app(Box::new(SenderApp::new(0, 25)));
    host.add_app(Box::new(SenderApp::new(0, 25)));
    host.add_app(Box::new(SenderApp::new(1024, 10)));
    let run = host.run();
    assert!(run.all_done, "all senders finish well under the limit");
    assert_eq!(run.apps.len(), 3);
    let world = run.into_world();
    assert_eq!(world.sim.world.metrics.sends_ok.get(), 60);
    // Every member (sequencer included) saw all 60 ordered messages.
    for n in 0..3 {
        assert!(world.sim.world.nodes[n].stats.deliveries >= 60);
    }
}

/// The desugaring is exact: driving a world through
/// `set_workload(Sender…)` and through an explicitly installed
/// `SenderApp` produces the *same simulation* — same completions, same
/// latencies, same event count. (The paper-anchor guarantee of this PR
/// in miniature.)
#[test]
fn workload_sender_desugars_to_sender_app_bit_identically() {
    let run = |explicit_app: bool| {
        let mut w = SimWorld::new(CostModel::mc68030_ether10(), 7);
        let group = GroupId(1);
        for _ in 0..4 {
            w.add_node();
        }
        w.create_group(0, group, GroupConfig::default());
        for n in 1..4 {
            w.join_group(n, group, GroupConfig::default());
        }
        w.run_until_ready();
        for n in 0..4 {
            if explicit_app {
                w.set_app(n, Box::new(SenderApp::new(512, 40)));
            } else {
                w.set_workload(n, Workload::Sender { size: 512, remaining: 40 });
            }
        }
        w.kick();
        w.run_for(SimDuration::from_secs(5));
        (
            w.sim.world.metrics.sends_ok.get(),
            w.sim.world.metrics.send_delay_us.mean(),
            w.sim.world.metrics.deliveries.get(),
            w.sim.events_executed(),
        )
    };
    assert_eq!(run(false), run(true));
}

/// Counts deliveries; crashes itself when told to.
struct CountAndCrash {
    crash_after: usize,
    seen: usize,
}

impl GroupApp for CountAndCrash {
    fn on_event(&mut self, ctx: &mut dyn Ctx, event: AppEvent) {
        if let AppEvent::Group(GroupEvent::Message { .. }) = event {
            self.seen += 1;
            if self.seen == self.crash_after {
                ctx.crash();
            }
        }
    }
}

#[test]
fn crashed_node_goes_silent_and_the_group_keeps_ordering() {
    let mut w = SimWorld::new(CostModel::mc68030_ether10(), 11);
    let group = GroupId(1);
    for _ in 0..3 {
        w.add_node();
    }
    w.create_group(0, group, GroupConfig::default());
    for n in 1..3 {
        w.join_group(n, group, GroupConfig::default());
    }
    w.run_until_ready();
    // Node 1 streams; node 2 crashes itself after 5 deliveries.
    w.set_workload(1, Workload::Sender { size: 0, remaining: 30 });
    w.set_app(2, Box::new(CountAndCrash { crash_after: 5, seen: 0 }));
    w.kick();
    w.run_for(SimDuration::from_secs(5));
    // The sender (talking to the surviving sequencer) is unaffected.
    assert_eq!(w.sim.world.metrics.sends_ok.get(), 30);
    assert!(!w.app_running(2), "crashed app has ended");
    assert!(w.sim.world.nodes[2].core.is_none(), "crashed kernel is gone");
    let dead_deliveries = w.sim.world.nodes[2].stats.deliveries;
    assert!(
        dead_deliveries < 30,
        "a dead machine must stop delivering (got {dead_deliveries})"
    );
    // And the survivors saw everything.
    assert!(w.sim.world.nodes[0].stats.deliveries >= 30);
}
