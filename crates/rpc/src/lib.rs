//! Amoeba-style RPC over FLIP: the paper's point-to-point baseline.
//!
//! Amoeba supports exactly one point-to-point primitive — RPC — and the
//! paper repeatedly compares group communication against it (a null
//! group broadcast is "0.1 msec faster than the RPC" on the same
//! hardware). This crate supplies that baseline: a sans-io,
//! at-most-once request/response protocol with client retransmission
//! and server-side duplicate suppression, plus `ForwardRequest` (the
//! last primitive of the paper's Table 1): a server may bounce a
//! request to another group member, whose reply goes straight back to
//! the client.
//!
//! The state machines mirror `amoeba-core`'s sans-io style: inputs are
//! packets and timer expirations; outputs are [`RpcAction`]s. See
//! DESIGN.md §1 (repository root) for where this baseline sits in the
//! stack and DESIGN.md §4 claim 5 for the comparison it anchors.
//!
//! # Example
//!
//! ```
//! use amoeba_rpc::{RpcClient, RpcServer, RpcMsg, RpcAction, ServerEvent};
//! use amoeba_flip::FlipAddress;
//! use bytes::Bytes;
//!
//! let client_addr = FlipAddress::process(1);
//! let server_addr = FlipAddress::process(2);
//! let mut client = RpcClient::new(client_addr);
//! let mut server = RpcServer::new(server_addr);
//!
//! // Client calls; the wire carries a Request.
//! let actions = client.call(server_addr, Bytes::from_static(b"ping"));
//! let request = match &actions[0] {
//!     RpcAction::Send { msg, .. } => msg.clone(),
//!     _ => unreachable!(),
//! };
//!
//! // Server receives, the application answers.
//! let (events, _) = server.handle_message(client_addr, request);
//! let ServerEvent::Request { id, client: c, data } = &events[0];
//! assert_eq!(&data[..], b"ping");
//! let reply_actions = server.reply(*id, *c, Bytes::from_static(b"pong"));
//!
//! // Client consumes the reply and completes.
//! let reply = match &reply_actions[0] {
//!     RpcAction::Send { msg, .. } => msg.clone(),
//!     _ => unreachable!(),
//! };
//! let done = client.handle_message(server_addr, reply);
//! assert!(done.iter().any(|a| matches!(a, RpcAction::CallDone(Ok(d)) if &d[..] == b"pong")));
//! ```

use std::collections::HashMap;

use amoeba_flip::FlipAddress;
use bytes::Bytes;

/// Size of the RPC header above FLIP, matching the paper's 32-byte
/// Amoeba user header budget.
pub const RPC_HEADER_LEN: u32 = 32;

/// A packet of the RPC protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcMsg {
    /// Client → server (or server → delegate, for `ForwardRequest`).
    Request {
        /// Client-local call id (dedup across retransmits).
        id: u64,
        /// The originating client (replies go here even after forwards).
        client: FlipAddress,
        /// Request bytes.
        data: Bytes,
    },
    /// Server → client.
    Reply {
        /// Echo of the call id.
        id: u64,
        /// Reply bytes.
        data: Bytes,
    },
}

impl RpcMsg {
    /// Bytes above the FLIP layer (header + payload), for wire/cost
    /// accounting.
    pub fn wire_size(&self) -> u32 {
        match self {
            RpcMsg::Request { data, .. } | RpcMsg::Reply { data, .. } => {
                RPC_HEADER_LEN + data.len() as u32
            }
        }
    }
}

/// Output of the client/server state machines.
#[derive(Debug, Clone, PartialEq)]
pub enum RpcAction {
    /// Transmit a packet.
    Send {
        /// Destination process.
        to: FlipAddress,
        /// The packet.
        msg: RpcMsg,
    },
    /// Arm the retransmission timer.
    SetTimer {
        /// Microseconds until expiry.
        after_us: u64,
    },
    /// Disarm the retransmission timer.
    CancelTimer,
    /// The blocking call finished.
    CallDone(Result<Bytes, RpcError>),
}

/// Why an RPC failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// The server never answered.
    ServerUnreachable,
    /// A call is already outstanding (the primitive is blocking).
    Busy,
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::ServerUnreachable => write!(f, "rpc server unreachable"),
            RpcError::Busy => write!(f, "an rpc call is already outstanding"),
        }
    }
}

impl std::error::Error for RpcError {}

/// What the server application must react to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerEvent {
    /// A fresh request to answer via [`RpcServer::reply`] (or
    /// [`RpcServer::forward`]).
    Request {
        /// Call id (echo into the reply).
        id: u64,
        /// The originating client.
        client: FlipAddress,
        /// Request bytes.
        data: Bytes,
    },
}

#[derive(Debug)]
struct PendingCall {
    id: u64,
    server: FlipAddress,
    data: Bytes,
    retries: u32,
}

/// The client half: one blocking call at a time, retransmitted until
/// the reply arrives or retries run out.
#[derive(Debug)]
pub struct RpcClient {
    my_addr: FlipAddress,
    next_id: u64,
    pending: Option<PendingCall>,
    /// Initial retransmission timeout, µs (doubles per retry).
    pub retransmit_us: u64,
    /// Retries before the call fails.
    pub max_retries: u32,
}

impl RpcClient {
    /// Creates a client bound to this process's FLIP address.
    pub fn new(my_addr: FlipAddress) -> Self {
        RpcClient { my_addr, next_id: 0, pending: None, retransmit_us: 50_000, max_retries: 8 }
    }

    /// Starts a call. Completes via [`RpcAction::CallDone`].
    pub fn call(&mut self, server: FlipAddress, data: Bytes) -> Vec<RpcAction> {
        if self.pending.is_some() {
            return vec![RpcAction::CallDone(Err(RpcError::Busy))];
        }
        self.next_id += 1;
        let id = self.next_id;
        self.pending = Some(PendingCall { id, server, data: data.clone(), retries: 0 });
        vec![
            RpcAction::Send {
                to: server,
                msg: RpcMsg::Request { id, client: self.my_addr, data },
            },
            RpcAction::SetTimer { after_us: self.retransmit_us },
        ]
    }

    /// Feeds an incoming packet.
    pub fn handle_message(&mut self, _from: FlipAddress, msg: RpcMsg) -> Vec<RpcAction> {
        let RpcMsg::Reply { id, data } = msg else { return Vec::new() };
        match &self.pending {
            Some(p) if p.id == id => {
                self.pending = None;
                vec![RpcAction::CancelTimer, RpcAction::CallDone(Ok(data))]
            }
            _ => Vec::new(), // stale or duplicate reply
        }
    }

    /// The retransmission timer fired.
    pub fn handle_timer(&mut self) -> Vec<RpcAction> {
        let Some(p) = &mut self.pending else { return Vec::new() };
        p.retries += 1;
        if p.retries > self.max_retries {
            self.pending = None;
            return vec![RpcAction::CallDone(Err(RpcError::ServerUnreachable))];
        }
        let backoff = self.retransmit_us << p.retries.min(6);
        vec![
            RpcAction::Send {
                to: p.server,
                msg: RpcMsg::Request { id: p.id, client: self.my_addr, data: p.data.clone() },
            },
            RpcAction::SetTimer { after_us: backoff },
        ]
    }

    /// Whether a call is outstanding.
    pub fn is_busy(&self) -> bool {
        self.pending.is_some()
    }
}

/// The server half: surfaces fresh requests, suppresses duplicates by
/// replaying the cached reply (at-most-once execution).
#[derive(Debug)]
pub struct RpcServer {
    my_addr: FlipAddress,
    /// Per client: highest served id and its cached reply.
    seen: HashMap<FlipAddress, (u64, Option<Bytes>)>,
}

impl RpcServer {
    /// Creates a server bound to this process's FLIP address.
    pub fn new(my_addr: FlipAddress) -> Self {
        RpcServer { my_addr, seen: HashMap::new() }
    }

    /// The server's own address (used when forwarding).
    pub fn my_addr(&self) -> FlipAddress {
        self.my_addr
    }

    /// Feeds an incoming packet. Returns application events plus wire
    /// actions (cached-reply replays for duplicates).
    pub fn handle_message(
        &mut self,
        _from: FlipAddress,
        msg: RpcMsg,
    ) -> (Vec<ServerEvent>, Vec<RpcAction>) {
        let RpcMsg::Request { id, client, data } = msg else {
            return (Vec::new(), Vec::new());
        };
        match self.seen.get(&client) {
            Some(&(seen_id, ref cached)) if seen_id == id => {
                // Duplicate of the call we (maybe) already answered.
                let actions = cached
                    .as_ref()
                    .map(|reply| {
                        vec![RpcAction::Send {
                            to: client,
                            msg: RpcMsg::Reply { id, data: reply.clone() },
                        }]
                    })
                    .unwrap_or_default(); // still executing: stay quiet
                (Vec::new(), actions)
            }
            Some(&(seen_id, _)) if seen_id > id => (Vec::new(), Vec::new()), // ancient
            _ => {
                self.seen.insert(client, (id, None));
                (vec![ServerEvent::Request { id, client, data }], Vec::new())
            }
        }
    }

    /// Answers a request (the application finished executing it).
    pub fn reply(&mut self, id: u64, client: FlipAddress, data: Bytes) -> Vec<RpcAction> {
        if let Some(slot) = self.seen.get_mut(&client) {
            if slot.0 == id {
                slot.1 = Some(data.clone());
            }
        }
        vec![RpcAction::Send { to: client, msg: RpcMsg::Reply { id, data } }]
    }

    /// `ForwardRequest`: bounce the request to another member; its
    /// reply (carrying the original client address) returns directly to
    /// the caller.
    pub fn forward(&mut self, id: u64, client: FlipAddress, data: Bytes, to: FlipAddress) -> Vec<RpcAction> {
        // Forget the call locally: the delegate owns it now.
        if let Some(slot) = self.seen.get(&client) {
            if slot.0 == id && slot.1.is_none() {
                self.seen.remove(&client);
            }
        }
        vec![RpcAction::Send { to, msg: RpcMsg::Request { id, client, data } }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u64) -> FlipAddress {
        FlipAddress::process(n)
    }

    fn sent(actions: &[RpcAction]) -> Vec<(FlipAddress, RpcMsg)> {
        actions
            .iter()
            .filter_map(|a| match a {
                RpcAction::Send { to, msg } => Some((*to, msg.clone())),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn call_reply_roundtrip() {
        let mut client = RpcClient::new(addr(1));
        let mut server = RpcServer::new(addr(2));
        let actions = client.call(addr(2), Bytes::from_static(b"req"));
        assert!(client.is_busy());
        let (to, msg) = sent(&actions).remove(0);
        assert_eq!(to, addr(2));
        let (events, extra) = server.handle_message(addr(1), msg);
        assert!(extra.is_empty());
        let ServerEvent::Request { id, client: c, data } = &events[0];
        assert_eq!(&data[..], b"req");
        let reply_actions = server.reply(*id, *c, Bytes::from_static(b"resp"));
        let (_, reply) = sent(&reply_actions).remove(0);
        let done = client.handle_message(addr(2), reply);
        assert!(matches!(&done[..], [RpcAction::CancelTimer, RpcAction::CallDone(Ok(d))] if &d[..] == b"resp"));
        assert!(!client.is_busy());
    }

    #[test]
    fn busy_client_rejects_second_call() {
        let mut client = RpcClient::new(addr(1));
        client.call(addr(2), Bytes::new());
        let second = client.call(addr(2), Bytes::new());
        assert!(matches!(&second[..], [RpcAction::CallDone(Err(RpcError::Busy))]));
    }

    #[test]
    fn retransmit_then_give_up() {
        let mut client = RpcClient::new(addr(1));
        client.max_retries = 3;
        client.call(addr(2), Bytes::from_static(b"x"));
        for _ in 0..3 {
            let actions = client.handle_timer();
            assert_eq!(sent(&actions).len(), 1, "each timer resends");
        }
        let final_actions = client.handle_timer();
        assert!(matches!(
            &final_actions[..],
            [RpcAction::CallDone(Err(RpcError::ServerUnreachable))]
        ));
        assert!(!client.is_busy());
    }

    #[test]
    fn duplicate_request_replays_cached_reply_without_reexecution() {
        let mut server = RpcServer::new(addr(2));
        let req = RpcMsg::Request { id: 5, client: addr(1), data: Bytes::from_static(b"q") };
        let (events, _) = server.handle_message(addr(1), req.clone());
        assert_eq!(events.len(), 1);
        server.reply(5, addr(1), Bytes::from_static(b"a"));
        // The duplicate must NOT surface a second application event.
        let (events2, actions2) = server.handle_message(addr(1), req);
        assert!(events2.is_empty(), "at-most-once execution");
        let replies = sent(&actions2);
        assert!(matches!(&replies[0].1, RpcMsg::Reply { id: 5, data } if &data[..] == b"a"));
    }

    #[test]
    fn duplicate_while_executing_stays_silent() {
        let mut server = RpcServer::new(addr(2));
        let req = RpcMsg::Request { id: 7, client: addr(1), data: Bytes::new() };
        server.handle_message(addr(1), req.clone());
        let (events, actions) = server.handle_message(addr(1), req);
        assert!(events.is_empty());
        assert!(actions.is_empty(), "no reply exists yet; the client keeps retrying");
    }

    #[test]
    fn forward_request_reaches_delegate_and_client_gets_reply() {
        let mut client = RpcClient::new(addr(1));
        let mut front = RpcServer::new(addr(2));
        let mut delegate = RpcServer::new(addr(3));
        let actions = client.call(addr(2), Bytes::from_static(b"work"));
        let (_, msg) = sent(&actions).remove(0);
        let (events, _) = front.handle_message(addr(1), msg);
        let ServerEvent::Request { id, client: c, data } = events[0].clone();
        // Front-end forwards to the delegate.
        let fwd = front.forward(id, c, data, addr(3));
        let (to, fwd_msg) = sent(&fwd).remove(0);
        assert_eq!(to, addr(3));
        let (devents, _) = delegate.handle_message(addr(2), fwd_msg);
        let ServerEvent::Request { id: did, client: dc, data: ddata } = devents[0].clone();
        assert_eq!(dc, addr(1), "original client address travels with the request");
        assert_eq!(&ddata[..], b"work");
        let reply_actions = delegate.reply(did, dc, Bytes::from_static(b"done"));
        let (reply_to, reply) = sent(&reply_actions).remove(0);
        assert_eq!(reply_to, addr(1), "reply goes straight to the client");
        let done = client.handle_message(addr(3), reply);
        assert!(done.iter().any(|a| matches!(a, RpcAction::CallDone(Ok(d)) if &d[..] == b"done")));
    }

    #[test]
    fn stale_reply_ignored() {
        let mut client = RpcClient::new(addr(1));
        client.call(addr(2), Bytes::new());
        let stale = RpcMsg::Reply { id: 999, data: Bytes::new() };
        assert!(client.handle_message(addr(2), stale).is_empty());
        assert!(client.is_busy());
    }

    #[test]
    fn wire_size_counts_header_and_payload() {
        let m = RpcMsg::Request { id: 1, client: addr(1), data: Bytes::from(vec![0; 100]) };
        assert_eq!(m.wire_size(), RPC_HEADER_LEN + 100);
        let null = RpcMsg::Reply { id: 1, data: Bytes::new() };
        assert_eq!(null.wire_size(), RPC_HEADER_LEN);
    }
}
