//! End-to-end exercises of the sharding layer on the simulated
//! kernel: routing, stale-map retry, split/merge/rebalance under
//! load, cross-shard reads and writes, and recovery from a sequencer
//! crash — each ending with a clean delivery audit and zero lost
//! acked writes.

use amoeba_core::audit::EndFate;
use amoeba_shard::{
    audit_group, fault_tolerant_config, key_hash, lost_acked_writes, run_reshard, run_until,
    Cluster, Completion, ReshardGoal, ShardMap, ShardSpec, SimCluster,
};

/// Pumps until operation `id` completes; panics if it does not within
/// `max` cycles (1 ms simulated each).
fn finish<C: Cluster + ?Sized>(c: &mut C, id: u64, max: usize) -> Completion {
    let mut out = None;
    let done = run_until(c, max, |r| {
        if out.is_none() {
            out = r.take(id);
        }
        out.is_some()
    });
    assert!(done, "operation {id} did not complete in {max} cycles");
    out.unwrap()
}

fn put<C: Cluster + ?Sized>(c: &mut C, key: &str, value: &str) {
    let id = c.router().put(key, value);
    assert!(matches!(finish(c, id, 20_000), Completion::Put { .. }));
}

fn get<C: Cluster + ?Sized>(c: &mut C, key: &str) -> Option<String> {
    let id = c.router().get(key);
    match finish(c, id, 20_000) {
        Completion::Get { value, .. } => value,
        other => panic!("expected a Get completion, got {other:?}"),
    }
}

/// Full-cluster audit: delivery audit per data group (all members
/// live) plus the zero-lost-acked-writes check.
fn assert_clean(c: &mut SimCluster) {
    let acked = c.router().acked_writes().clone();
    for group in &c.groups {
        let fates = vec![EndFate::Live; group.logs.len()];
        let violations = audit_group(group, &fates, true);
        assert!(violations.is_empty(), "group {}: {violations:?}", group.id);
    }
    let lost = lost_acked_writes(&acked, &c.board, &c.groups, |_| 0);
    assert!(lost.is_empty(), "lost acked writes: {lost:?}");
}

#[test]
fn routes_across_shards_and_reads_back() {
    let mut c = SimCluster::new(ShardSpec::new(11, 4, 3));
    let keys: Vec<String> = (0..24).map(|i| format!("k{i}")).collect();
    for (i, k) in keys.iter().enumerate() {
        put(&mut c, k, &format!("v{i}"));
    }
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(get(&mut c, k).as_deref(), Some(format!("v{i}").as_str()));
    }
    assert_eq!(get(&mut c, "absent"), None);
    // With 24 keys over 4 uniform shards, every group should serve
    // some of the traffic.
    let map = c.router().map().clone();
    for gid in 1..=4u64 {
        assert!(
            keys.iter().any(|k| map.owner(key_hash(k)) == gid),
            "no key landed on group {gid}"
        );
    }
    assert!(c.halt(), "apps did not stop");
    assert_clean(&mut c);
}

#[test]
fn overwrites_serialize_per_key() {
    let mut c = SimCluster::new(ShardSpec::new(12, 2, 3));
    // Pipeline five writes to one key without waiting: per-key
    // serialization must apply them in submission order.
    let ids: Vec<u64> = (0..5).map(|i| c.router().put("hot", &format!("v{i}"))).collect();
    for id in ids {
        finish(&mut c, id, 20_000);
    }
    assert_eq!(get(&mut c, "hot").as_deref(), Some("v4"));
    assert!(c.halt());
    assert_clean(&mut c);
}

#[test]
fn split_under_load_keeps_every_acked_write() {
    let spec = ShardSpec::new(13, 2, 3).with_spares(1);
    let mut c = SimCluster::new(spec);
    let keys: Vec<String> = (0..16).map(|i| format!("key-{i}")).collect();
    for k in &keys {
        put(&mut c, k, "before");
    }
    // Split group 1's range at its midpoint and hand the upper half
    // to the spare group 3, while writes keep flowing.
    let (start, end) = {
        let map = c.router().map();
        let i = map.ranges.iter().position(|r| r.group == 1).unwrap();
        map.bounds(i)
    };
    let mid = start + (end.wrapping_sub(start) / 2);
    let goal = ReshardGoal::Split { at: mid, to: 3 };
    let meta = c.meta_port();
    let mut ctl = amoeba_shard::MoveController::new(goal);
    let mut i = 0usize;
    let mut done = false;
    for round in 0..40_000 {
        if !done {
            done = ctl.step(c.router(), &meta);
        }
        // Interleave writes with the move: every 8th cycle, overwrite
        // the next key. Writes into the frozen range are nacked and
        // retried by the router until the new owner serves them.
        if round % 8 == 0 && i < 64 {
            c.router().put(&keys[i % keys.len()], &format!("during-{i}"));
            i += 1;
        }
        c.advance();
        if done && i >= 64 && c.router().idle() {
            break;
        }
    }
    assert!(done, "split did not complete");
    assert!(run_until(&mut c, 20_000, |r| r.idle()), "writes did not drain");
    // The upper half of group 1's old range now belongs to group 3.
    let map = c.router().map().clone();
    assert_eq!(map.owner(mid), 3);
    assert!(map.ranges.iter().any(|r| r.group == 1), "group 1 keeps the lower half");
    let retried = c.router().stats().frozen + c.router().stats().wrong_shard;
    assert!(retried > 0, "the load never raced the move — test is too gentle");
    assert!(c.halt());
    assert_clean(&mut c);
}

#[test]
fn rebalance_then_merge_returns_to_uniform() {
    let spec = ShardSpec::new(14, 2, 3).with_spares(1);
    let mut c = SimCluster::new(spec);
    for i in 0..12 {
        put(&mut c, &format!("m{i}"), &format!("x{i}"));
    }
    // Move group 2's whole range to the spare group 3...
    let start = {
        let map = c.router().map();
        let i = map.ranges.iter().position(|r| r.group == 2).unwrap();
        map.bounds(i).0
    };
    assert!(run_reshard(&mut c, ReshardGoal::Rebalance { start, to: 3 }, 40_000));
    assert_eq!(c.router().map().owner(start), 3);
    for i in 0..12 {
        assert_eq!(get(&mut c, &format!("m{i}")).as_deref(), Some(format!("x{i}").as_str()));
    }
    // ...then hand it to group 1 and merge the boundary away.
    assert!(run_reshard(&mut c, ReshardGoal::Rebalance { start, to: 1 }, 40_000));
    assert!(run_reshard(&mut c, ReshardGoal::Merge { start }, 40_000));
    let map = c.router().map().clone();
    assert_eq!(map.ranges.len(), 1, "ring collapsed to one range: {:?}", map.ranges);
    assert_eq!(map.ranges[0].group, 1);
    for i in 0..12 {
        assert_eq!(get(&mut c, &format!("m{i}")).as_deref(), Some(format!("x{i}").as_str()));
    }
    assert!(c.halt());
    assert_clean(&mut c);
}

#[test]
fn fence_reads_span_shards() {
    let mut c = SimCluster::new(ShardSpec::new(15, 4, 3));
    put(&mut c, "alpha", "1");
    put(&mut c, "beta", "2");
    put(&mut c, "gamma", "3");
    let id = c.router().fence(vec!["alpha".into(), "beta".into(), "gamma".into(), "nil".into()]);
    let Completion::Fence { values } = finish(&mut c, id, 20_000) else { panic!() };
    assert_eq!(
        values,
        vec![
            ("alpha".to_string(), Some("1".to_string())),
            ("beta".to_string(), Some("2".to_string())),
            ("gamma".to_string(), Some("3".to_string())),
            ("nil".to_string(), None),
        ]
    );
    assert!(c.halt());
    assert_clean(&mut c);
}

#[test]
fn cross_shard_write_commits_atomically() {
    let mut c = SimCluster::new(ShardSpec::new(16, 4, 3));
    // Find two keys on different groups so the transaction really
    // spans shards.
    let map = c.router().map().clone();
    let keys: Vec<String> = (0..32).map(|i| format!("t{i}")).collect();
    let a = keys[0].clone();
    let b = keys
        .iter()
        .find(|k| map.owner(key_hash(k)) != map.owner(key_hash(&a)))
        .expect("two shards")
        .clone();
    let id = c.router().cross_put(vec![(a.clone(), "left".into()), (b.clone(), "right".into())]);
    assert!(matches!(finish(&mut c, id, 20_000), Completion::TxCommitted));
    assert_eq!(get(&mut c, &a).as_deref(), Some("left"));
    assert_eq!(get(&mut c, &b).as_deref(), Some("right"));
    // A fence over both must see the committed pair.
    let id = c.router().fence(vec![a.clone(), b.clone()]);
    let Completion::Fence { values } = finish(&mut c, id, 20_000) else { panic!() };
    assert_eq!(values[0].1.as_deref(), Some("left"));
    assert_eq!(values[1].1.as_deref(), Some("right"));
    assert!(c.router().stats().txs_committed >= 1);
    assert!(c.halt());
    assert_clean(&mut c);
}

#[test]
fn cross_put_races_reshard_without_losing_acked_writes() {
    let spec = ShardSpec::new(21, 2, 3).with_spares(1);
    let mut c = SimCluster::new(spec);
    let map = c.router().map().clone();
    // One key on each group, so every transaction spans both — and the
    // move drags key `a`'s whole range out from under the 2PC traffic.
    let a = (0..).map(|i| format!("x{i}")).find(|k| map.owner(key_hash(k)) == 1).unwrap();
    let b = (0..).map(|i| format!("x{i}")).find(|k| map.owner(key_hash(k)) == 2).unwrap();
    put(&mut c, &a, "init");
    put(&mut c, &b, "init");
    let start = {
        let i = map.ranges.iter().position(|r| r.group == 1).unwrap();
        map.bounds(i).0
    };
    let meta = c.meta_port();
    let mut ctl = amoeba_shard::MoveController::new(ReshardGoal::Rebalance { start, to: 3 });
    let (mut issued, mut done) = (0usize, false);
    for round in 0..60_000 {
        if !done {
            done = ctl.step(c.router(), &meta);
        }
        // Keep transactions in flight across the whole move: prepares
        // racing the freeze are rejected and re-run, staged locks make
        // the freeze itself retry, and commits after the flip route to
        // the new owner.
        if round % 5 == 0 && issued < 40 {
            c.router().cross_put(vec![
                (a.clone(), format!("a{issued}")),
                (b.clone(), format!("b{issued}")),
            ]);
            issued += 1;
        }
        c.advance();
        if done && issued >= 40 && c.router().idle() {
            break;
        }
    }
    assert!(done, "reshard did not complete under 2PC load");
    assert!(run_until(&mut c, 40_000, |r| r.idle()), "transactions did not drain");
    assert_eq!(c.router().stats().txs_committed, 40, "every transaction must commit");
    assert_eq!(c.router().map().owner(key_hash(&a)), 3);
    // Per-key claims serialize the transactions, so the last one wins.
    assert_eq!(get(&mut c, &a).as_deref(), Some("a39"));
    assert_eq!(get(&mut c, &b).as_deref(), Some("b39"));
    let stats = c.router().stats().clone();
    assert!(
        stats.frozen + stats.wrong_shard + stats.locked > 0,
        "the transactions never raced the move — test is too gentle"
    );
    assert!(c.halt());
    assert_clean(&mut c);
}

#[test]
fn sequencer_crash_heals_and_routing_resumes() {
    let mut spec = ShardSpec::new(17, 2, 4);
    spec.data_config = Some(fault_tolerant_config(4, 3, 1));
    spec.meta_config = Some(fault_tolerant_config(3, 3, 1));
    let mut c = SimCluster::new(spec);
    for i in 0..8 {
        put(&mut c, &format!("c{i}"), "pre");
    }
    // Crash group 1's sequencer (member 0, which is not the gateway).
    let victim = c.groups[0].nodes[0];
    c.world.crash(victim);
    // Keep writing: sends from group 1's gateway fail, auto-reset
    // rebuilds the group, the gateway re-sends under fresh sequence
    // numbers, and every write is eventually acked.
    for i in 0..8 {
        put(&mut c, &format!("c{i}"), "post");
    }
    for i in 0..8 {
        assert_eq!(get(&mut c, &format!("c{i}")).as_deref(), Some("post"));
    }
    assert!(c.halt());
    // The crashed member's log is frozen mid-run; audit it as crashed.
    let acked = c.router().acked_writes().clone();
    for (gi, group) in c.groups.iter().enumerate() {
        let mut fates = vec![EndFate::Live; group.logs.len()];
        if gi == 0 {
            fates[0] = EndFate::Crashed;
        }
        let violations = audit_group(group, &fates, false);
        assert!(violations.is_empty(), "group {}: {violations:?}", group.id);
    }
    // Member 1 (the gateway) is live in every group.
    let lost = lost_acked_writes(&acked, &c.board, &c.groups, |_| 1);
    assert!(lost.is_empty(), "lost acked writes: {lost:?}");
}

#[test]
fn wrong_shard_nacks_trigger_map_refresh() {
    let spec = ShardSpec::new(18, 2, 3).with_spares(1);
    let mut c = SimCluster::new(spec);
    put(&mut c, "probe", "v0");
    let owner = c.router().map().owner(key_hash("probe"));
    let start = {
        let map = c.router().map();
        let i = map.ranges.iter().position(|r| r.group == owner).unwrap();
        map.bounds(i).0
    };
    // Move the range while the router's map is still pointing at the
    // old owner, then write: replicas nack `WrongShard`/`Frozen`, the
    // router refreshes from the board and retries to the new owner.
    assert!(run_reshard(&mut c, ReshardGoal::Rebalance { start, to: 3 }, 40_000));
    put(&mut c, "probe", "v1");
    assert_eq!(get(&mut c, "probe").as_deref(), Some("v1"));
    assert!(c.router().stats().map_refreshes > 0, "router never refreshed its map");
    assert!(c.halt());
    assert_clean(&mut c);
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut c = SimCluster::new(ShardSpec::new(19, 2, 3));
        for i in 0..10 {
            put(&mut c, &format!("d{i}"), &format!("v{i}"));
        }
        assert!(c.halt());
        let logs: Vec<Vec<(u32, u64)>> = c
            .groups
            .iter()
            .flat_map(|g| g.logs.iter().map(|l| l.lock().unwrap().clone()))
            .collect();
        (c.now_us(), logs)
    };
    assert_eq!(run(), run(), "same spec, same seed, different histories");
}

#[test]
fn uniform_map_matches_spec_boundaries() {
    let spec = ShardSpec::new(20, 8, 2);
    let map = spec.initial_map();
    for i in 0..8 {
        assert_eq!(map.ranges[i].start, ShardMap::uniform_boundary(i, 8));
        assert_eq!(map.ranges[i].group, i as u64 + 1);
    }
}
