//! The reshard controller: split, merge and rebalance as one range-move
//! state machine.
//!
//! Every reconfiguration reduces to moving one range between groups:
//!
//! ```text
//! split(at, to)      = Split{at}  → move [at, end) to `to`
//! rebalance(start,to)=              move [start, end) to `to`
//! merge(start)       =              move [start, end) to prev owner
//!                                   → MergeIntoPrev{start}
//! ```
//!
//! and a move is a fixed pipeline, each step ordered by exactly one
//! total order (the meta group's for map steps, a data group's for
//! data steps):
//!
//! ```text
//! BeginMove  (meta)   mark the range moving; routing still → source
//! Freeze     (source) stop serving the range, snapshot its entries
//! Install    (dest)   adopt the range + snapshot
//! CommitMove (meta)   flip ownership; routing now → destination
//! Retire     (source) drop the range and its entries
//! ```
//!
//! No acked write can be lost: a write acked before the freeze is in
//! the snapshot (the snapshot is taken at the freeze's own delivery
//! point in the source's total order); a write arriving after the
//! freeze is nacked `Frozen` and retried by the router until the
//! destination serves it. The unavailability window for the moved
//! range is the freeze→commit span; all other ranges serve
//! continuously.
//!
//! The controller is a poll-driven state machine: call [`MoveController::step`] once
//! per router pump until it reports done. One controller at a time per
//! cluster (concurrent moves of *disjoint* ranges would work, but the
//! range bounds are captured at `BeginMove`, so a concurrent split of
//! the same range is not supported).

use crate::gateway::GatewayPort;
use crate::map::MapCmd;
use crate::router::{Completion, Router};

/// What to reshape. See the module docs for how each goal lowers onto
/// the common move pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReshardGoal {
    /// Split the range containing `at` at `at`, and move the upper
    /// half to group `to`.
    Split { at: u64, to: u64 },
    /// Move the range starting at `start` to group `to`.
    Rebalance { start: u64, to: u64 },
    /// Move the range starting at `start` back to its predecessor's
    /// owner and erase the boundary.
    Merge { start: u64 },
}

enum St {
    Start,
    AwaitBoundary,
    AwaitMoving,
    AwaitFrozen { id: u64 },
    AwaitInstalled { id: u64 },
    AwaitCommitted,
    AwaitRetired { id: u64 },
    AwaitMerged,
    Done,
}

/// Drives one [`ReshardGoal`] to completion; see [`MoveController::step`].
pub struct MoveController {
    goal: ReshardGoal,
    st: St,
    start: u64,
    end: u64,
    from: u64,
    to: u64,
}

impl MoveController {
    /// A controller for `goal`, not yet started.
    pub fn new(goal: ReshardGoal) -> Self {
        MoveController { goal, st: St::Start, start: 0, end: 0, from: 0, to: 0 }
    }

    /// True once the pipeline has fully completed.
    pub fn done(&self) -> bool {
        matches!(self.st, St::Done)
    }

    /// Advances the pipeline as far as the current map and completions
    /// allow. Call once per [`Router::pump`] cycle; map commands go out
    /// through the meta group's gateway port. Returns [`done`].
    ///
    /// [`done`]: MoveController::done
    pub fn step(&mut self, router: &mut Router, meta: &GatewayPort) -> bool {
        // Each call may traverse several steps when the awaited state
        // is already visible (loop until no transition fires).
        loop {
            match self.st {
                St::Start => match self.goal {
                    ReshardGoal::Split { at, to } => {
                        self.start = at;
                        self.to = to;
                        meta.push(MapCmd::Split { at }.encode());
                        self.st = St::AwaitBoundary;
                    }
                    ReshardGoal::Rebalance { start, to } => {
                        self.start = start;
                        self.to = to;
                        meta.push(MapCmd::BeginMove { start, to }.encode());
                        self.st = St::AwaitMoving;
                    }
                    ReshardGoal::Merge { start } => {
                        let map = router.map();
                        let Some(i) = map.ranges.iter().position(|r| r.start == start) else {
                            return false; // boundary not visible yet
                        };
                        assert!(i > 0, "cannot merge the first range into a predecessor");
                        self.start = start;
                        self.to = map.ranges[i - 1].group;
                        if map.ranges[i].group == self.to {
                            // Already co-owned: no data moves, just
                            // erase the boundary.
                            meta.push(MapCmd::MergeIntoPrev { start }.encode());
                            self.st = St::AwaitMerged;
                        } else {
                            meta.push(MapCmd::BeginMove { start, to: self.to }.encode());
                            self.st = St::AwaitMoving;
                        }
                    }
                },
                St::AwaitBoundary => {
                    if router.map().range_at(self.start).is_none() {
                        return false;
                    }
                    meta.push(MapCmd::BeginMove { start: self.start, to: self.to }.encode());
                    self.st = St::AwaitMoving;
                }
                St::AwaitMoving => {
                    let map = router.map();
                    let Some(i) = map.ranges.iter().position(|r| r.start == self.start) else {
                        return false;
                    };
                    if map.ranges[i].moving_to != Some(self.to) {
                        return false;
                    }
                    self.from = map.ranges[i].group;
                    self.end = map.bounds(i).1;
                    let id = router.freeze(self.from, self.start, self.end);
                    self.st = St::AwaitFrozen { id };
                }
                St::AwaitFrozen { id } => {
                    let Some(Completion::Frozen { entries }) = router.take(id) else {
                        return false;
                    };
                    let id = router.install(self.to, self.start, self.end, entries);
                    self.st = St::AwaitInstalled { id };
                }
                St::AwaitInstalled { id } => {
                    if router.take(id).is_none() {
                        return false;
                    }
                    meta.push(MapCmd::CommitMove { start: self.start }.encode());
                    self.st = St::AwaitCommitted;
                }
                St::AwaitCommitted => {
                    let map = router.map();
                    let Some(r) = map.range_at(self.start) else { return false };
                    if r.group != self.to || r.moving_to.is_some() {
                        return false;
                    }
                    let id = router.retire(self.from, self.start, self.end);
                    self.st = St::AwaitRetired { id };
                }
                St::AwaitRetired { id } => {
                    if router.take(id).is_none() {
                        return false;
                    }
                    if matches!(self.goal, ReshardGoal::Merge { .. }) {
                        meta.push(MapCmd::MergeIntoPrev { start: self.start }.encode());
                        self.st = St::AwaitMerged;
                    } else {
                        self.st = St::Done;
                    }
                }
                St::AwaitMerged => {
                    if router.map().range_at(self.start).is_some() {
                        return false;
                    }
                    self.st = St::Done;
                }
                St::Done => return true,
            }
        }
    }
}
