//! # amoeba-shard — the sharded multi-group serving layer
//!
//! The paper's protocol totally orders *one* group through *one*
//! sequencer; its throughput ceiling is that sequencer's CPU and the
//! shared wire. Production scale comes from running many groups and
//! partitioning work between them. This crate is that layer:
//!
//! - **Keyspace partitioning** ([`map`]): keys hash onto a 64-bit
//!   ring; a [`ShardMap`] of sorted ranges assigns each slice to one
//!   data group. The map is itself replicated state of a tiny *meta
//!   group* app ([`MetaApp`]) — map changes ride a total order too, so
//!   reconfiguration has one well-defined history.
//! - **Routing** ([`router`]): a [`Router`] caches the map, feeds each
//!   group's *gateway* member (the one member that broadcasts routed
//!   operations into its group), and retries on `WrongShard` nacks
//!   after refreshing the map — the retry-on-stale-map loop.
//! - **Split / merge / rebalance** ([`moves`]): every reshape lowers
//!   onto one range-move pipeline (freeze → install → commit →
//!   retire), each step ordered by exactly one total order. Acked
//!   writes cannot be lost across a move, and [`audit`] checks exactly
//!   that, alongside the standard per-group delivery audit.
//! - **Cross-shard reads** ([`Router::fence`]) and 2PC-style
//!   cross-shard writes ([`Router::cross_put`]).
//! - **Hosting** ([`cluster`]): [`SimCluster`] (simulated kernel) and
//!   [`LiveCluster`] (live runtime threads) assemble the same
//!   topology behind the [`Cluster`] trait, so orchestration code and
//!   the replica apps run unmodified on both backends.
//!
//! See DESIGN.md §11 for the protocol rules and their rationale.

pub mod audit;
pub mod cluster;
pub mod gateway;
pub mod map;
pub mod meta;
pub mod moves;
pub mod op;
pub mod router;
pub mod server;

pub use audit::{audit_group, lost_acked_writes};
pub use cluster::{
    fault_tolerant_config, run_reshard, run_until, Cluster, LiveCluster, ShardGroup, ShardSpec,
    SimCluster, META_GROUP_ID,
};
pub use gateway::{Gateway, GatewayPort};
pub use map::{key_hash, new_board, MapBoard, MapCmd, ShardMap, ShardRange};
pub use meta::MetaApp;
pub use moves::{MoveController, ReshardGoal};
pub use op::{NackReason, Reply, ShardOp};
pub use router::{Completion, Router, RouterStats};
pub use server::{SharedLog, SharedStore, ShardServerApp};
