//! Cluster assembly: the same sharded serving topology hosted on the
//! simulated kernel ([`SimCluster`]) or the live runtime
//! ([`LiveCluster`]), behind one [`Cluster`] trait so orchestration
//! code (tests, scenarios, the example) is backend-agnostic.
//!
//! Topology (node order is identical on both backends, which makes
//! member ids — and therefore delivery logs — comparable):
//!
//! ```text
//! nodes 0..meta_members                     the meta group
//! nodes meta_members + g*members + j        member j of data group g
//! ```
//!
//! Each data group's *gateway* is member index 1 (member 0 founds the
//! group and is its initial sequencer; keeping the roles on different
//! members means a sequencer crash does not sever routing). Groups of
//! one member use member 0.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use amoeba_app::GroupApp;
use amoeba_core::{GroupConfig, GroupId};
use amoeba_kernel::{CostModel, SimWorld};
use amoeba_runtime::{Amoeba, FaultPlan, GroupHandle, LiveHost};
use amoeba_sim::SimDuration;

use crate::gateway::{Gateway, GatewayPort};
use crate::map::{new_board, MapBoard, ShardMap};
use crate::meta::MetaApp;
use crate::moves::{MoveController, ReshardGoal};
use crate::op::ShardOp;
use crate::router::Router;
use crate::server::{SharedLog, SharedStore, ShardServerApp};

/// Wire id of the meta group (data groups use `1..`).
pub const META_GROUP_ID: u64 = 1_000;

/// The shape of a sharded cluster.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Deterministic seed (drives formation and, on the sim, the wire).
    pub seed: u64,
    /// Initial data shards (data groups `1..=shards` own one range
    /// each).
    pub shards: usize,
    /// Members per data group.
    pub members: usize,
    /// Members of the meta group.
    pub meta_members: usize,
    /// Extra data groups (ids `shards+1..=shards+spares`) that start
    /// owning nothing — split/rebalance targets.
    pub spares: usize,
    /// Data-group configuration; `None` = defaults scaled to the
    /// world's size. De-phasing across groups is applied on top.
    pub data_config: Option<GroupConfig>,
    /// Meta-group configuration; `None` = scaled defaults.
    pub meta_config: Option<GroupConfig>,
    /// Gateway inbox poll period (simulated/wall).
    pub poll: Duration,
}

impl ShardSpec {
    /// A cluster of `shards` data groups of `members` each, one
    /// 3-member meta group, no spares.
    pub fn new(seed: u64, shards: usize, members: usize) -> Self {
        ShardSpec {
            seed,
            shards,
            members,
            meta_members: 3,
            spares: 0,
            data_config: None,
            meta_config: None,
            poll: Duration::from_millis(1),
        }
    }

    /// Adds `spares` initially-empty data groups.
    pub fn with_spares(mut self, spares: usize) -> Self {
        self.spares = spares;
        self
    }

    /// Total data groups (owning + spare).
    pub fn data_groups(&self) -> usize {
        self.shards + self.spares
    }

    /// Total nodes across meta and data groups.
    pub fn total_nodes(&self) -> usize {
        self.meta_members + self.data_groups() * self.members
    }

    /// Node index of member `j` of data group index `g` (0-based).
    pub fn data_node(&self, g: usize, j: usize) -> usize {
        self.meta_members + g * self.members + j
    }

    /// Which member index carries a group's gateway.
    pub fn gateway_member(members: usize) -> usize {
        usize::from(members > 1)
    }

    /// The initial map: the ring split evenly across the owning data
    /// groups (wire ids `1..=shards`).
    pub fn initial_map(&self) -> ShardMap {
        let owners: Vec<u64> = (1..=self.shards as u64).collect();
        ShardMap::uniform(&owners)
    }

    /// Group configuration for group index `g` (0 = meta, `1..` =
    /// data), with cross-group de-phasing applied (aligned periodic
    /// timers across groups sharing one wire collide chronically —
    /// DESIGN.md §10).
    pub fn config_for(&self, g: usize) -> GroupConfig {
        let groups = self.data_groups() + 1;
        let (base, members) = if g == 0 {
            (self.meta_config.clone(), self.meta_members)
        } else {
            (self.data_config.clone(), self.members)
        };
        let mut c = base.unwrap_or_else(|| GroupConfig::scaled_for_world(members, groups));
        c.sync_interval_us += g as u64 * (c.sync_round_us / 4);
        c.status_stagger_us += 53 * g as u64;
        c
    }
}

/// A group configuration for clusters that must ride out crashes
/// promptly: scaled for the world like the defaults, but with snappy
/// failure detection, robust repair and automatic recovery (the same
/// knob set the chaos explorer runs under). The stock timers would
/// take ~13 simulated seconds to give up on a dead sequencer — far
/// too slow for a serving layer.
pub fn fault_tolerant_config(members: usize, groups: usize, send_window: usize) -> GroupConfig {
    let mut c = GroupConfig::scaled_for_world(members, groups);
    c.send_window = send_window;
    c.send_retransmit_us = 40_000;
    c.send_max_retries = 5;
    c.nack_retry_us = 25_000;
    c.sync_interval_us = c.sync_interval_us.min(500_000).max(c.sync_round_us * 2);
    c.robust_repair = true;
    c.recovery_watchdog_us = 1_000_000.max(2 * c.sync_interval_us);
    c.auto_reset = true;
    c.auto_reset_min_members = 1;
    c
}

/// Harness-side handles for one group: its gateway port plus every
/// member's shared store and delivery log.
pub struct ShardGroup {
    /// Wire group id.
    pub id: u64,
    /// Node indices, in member-id order.
    pub nodes: Vec<usize>,
    /// The gateway's router-facing endpoints.
    pub port: GatewayPort,
    /// Per-member delivery logs `(origin member, gateway seq)`.
    pub logs: Vec<SharedLog>,
    /// Per-member KV stores (empty vec for the meta group).
    pub stores: Vec<SharedStore>,
}

/// Builds the app set for one data group; returns the harness handles
/// and the apps in member order.
fn build_data_group(
    spec: &ShardSpec,
    g: usize,
    map: &ShardMap,
    poll: Duration,
) -> (ShardGroup, Vec<Box<dyn GroupApp>>) {
    let id = g as u64 + 1;
    let owned = map.ranges_of(id);
    let port = GatewayPort::new();
    let gw_member = ShardSpec::gateway_member(spec.members);
    let mut logs = Vec::new();
    let mut stores = Vec::new();
    let mut apps: Vec<Box<dyn GroupApp>> = Vec::new();
    for j in 0..spec.members {
        let store: SharedStore = Arc::new(Mutex::new(BTreeMap::new()));
        let log: SharedLog = Arc::new(Mutex::new(Vec::new()));
        let gateway = (j == gw_member).then(|| Gateway::new(port.clone(), poll));
        apps.push(Box::new(ShardServerApp::new(
            owned.clone(),
            store.clone(),
            log.clone(),
            gateway,
        )));
        stores.push(store);
        logs.push(log);
    }
    let nodes = (0..spec.members).map(|j| spec.data_node(g, j)).collect();
    (ShardGroup { id, nodes, port, logs, stores }, apps)
}

/// Builds the meta group's app set.
fn build_meta_group(
    spec: &ShardSpec,
    map: &ShardMap,
    board: &MapBoard,
    poll: Duration,
) -> (ShardGroup, Vec<Box<dyn GroupApp>>) {
    let port = GatewayPort::new();
    let gw_member = ShardSpec::gateway_member(spec.meta_members);
    let mut logs = Vec::new();
    let mut apps: Vec<Box<dyn GroupApp>> = Vec::new();
    for j in 0..spec.meta_members {
        let log: SharedLog = Arc::new(Mutex::new(Vec::new()));
        let gateway = (j == gw_member).then(|| Gateway::new(port.clone(), poll));
        apps.push(Box::new(MetaApp::new(map.clone(), board.clone(), log.clone(), gateway)));
        logs.push(log);
    }
    let nodes = (0..spec.meta_members).collect();
    (ShardGroup { id: META_GROUP_ID, nodes, port, logs, stores: Vec::new() }, apps)
}

/// One sharded cluster, backend-erased. `advance` moves time forward
/// one scheduling quantum *and* pumps the router once; all
/// orchestration helpers below are written against this trait.
pub trait Cluster {
    /// Advance time one quantum (≈1 ms simulated / a few ms wall) and
    /// pump the router.
    fn advance(&mut self);
    /// The cluster's router.
    fn router(&mut self) -> &mut Router;
    /// A clone of the meta gateway's endpoints (for map commands).
    fn meta_port(&self) -> GatewayPort;
    /// Broadcast `Halt` through every group and wait for every app to
    /// end. Returns whether everything shut down inside the limit.
    fn halt(&mut self) -> bool;
}

/// Pumps `c` until `done(router)` holds, at most `max_cycles` cycles.
pub fn run_until<C: Cluster + ?Sized>(
    c: &mut C,
    max_cycles: usize,
    mut done: impl FnMut(&mut Router) -> bool,
) -> bool {
    for _ in 0..max_cycles {
        if done(c.router()) {
            return true;
        }
        c.advance();
    }
    done(c.router())
}

/// Drives one [`ReshardGoal`] to completion (at most `max_cycles`
/// pump cycles); returns whether it finished.
pub fn run_reshard<C: Cluster + ?Sized>(
    c: &mut C,
    goal: ReshardGoal,
    max_cycles: usize,
) -> bool {
    let meta = c.meta_port();
    let mut ctl = MoveController::new(goal);
    for _ in 0..max_cycles {
        if ctl.step(c.router(), &meta) {
            return true;
        }
        c.advance();
    }
    ctl.step(c.router(), &meta)
}

// ---------------------------------------------------------------------
// Simulated backend
// ---------------------------------------------------------------------

/// The sharded cluster on the simulated kernel. The world is public:
/// fault scripting (crash schedules, chaos plans) goes straight to
/// [`SimWorld`].
pub struct SimCluster {
    /// The underlying simulated world.
    pub world: SimWorld,
    /// The cluster's shape.
    pub spec: ShardSpec,
    /// The routing board the meta members publish into.
    pub board: MapBoard,
    /// Meta-group harness handles.
    pub meta: ShardGroup,
    /// Data-group harness handles, in group-id order.
    pub groups: Vec<ShardGroup>,
    router: Router,
    quantum: SimDuration,
}

impl SimCluster {
    /// Builds, forms and starts the cluster described by `spec`
    /// (formation is complete and apps are running on return).
    pub fn new(spec: ShardSpec) -> Self {
        Self::with_world(spec, |s| SimWorld::new(CostModel::mc68030_ether10(), s.seed))
    }

    /// Like [`SimCluster::new`] with a caller-built world (custom
    /// wire, for instance). The world must be empty.
    pub fn with_world(spec: ShardSpec, make: impl FnOnce(&ShardSpec) -> SimWorld) -> Self {
        let mut world = make(&spec);
        for _ in 0..spec.total_nodes() {
            world.add_node();
        }

        // Formation: group index 0 is meta, 1.. are data groups.
        let group_nodes = |g: usize| -> Vec<usize> {
            if g == 0 {
                (0..spec.meta_members).collect()
            } else {
                (0..spec.members).map(|j| spec.data_node(g - 1, j)).collect()
            }
        };
        let group_id = |g: usize| -> GroupId {
            if g == 0 {
                GroupId(META_GROUP_ID)
            } else {
                GroupId(g as u64)
            }
        };
        let groups_total = spec.data_groups() + 1;
        for g in 0..groups_total {
            world.create_group(group_nodes(g)[0], group_id(g), spec.config_for(g));
        }
        // One global staggered timetable, interleaved across the
        // groups sharing the Ethernet (the scenario runner's schedule;
        // simultaneous joins overflow the sequencers' receive rings).
        // Staggering also makes member-id assignment deterministic —
        // member j of every group is node j of that group, matching
        // the live backend's sequential joins — where simultaneous
        // joins would race for admission order.
        let widest = spec.members.max(spec.meta_members);
        let mut at = 0u64;
        for j in 1..widest {
            for g in 0..groups_total {
                let nodes = group_nodes(g);
                if let Some(&n) = nodes.get(j) {
                    at += 1_000 + 17 * j as u64;
                    world.join_group_at(n, group_id(g), spec.config_for(g), at);
                }
            }
        }
        world.run_until_ready();

        let map = spec.initial_map();
        let board = new_board(map.clone());
        let (meta, meta_apps) = build_meta_group(&spec, &map, &board, spec.poll);
        for (j, app) in meta_apps.into_iter().enumerate() {
            world.set_app(meta.nodes[j], app);
        }
        let mut groups = Vec::new();
        let mut ports = BTreeMap::new();
        for g in 0..spec.data_groups() {
            let (group, apps) = build_data_group(&spec, g, &map, spec.poll);
            for (j, app) in apps.into_iter().enumerate() {
                world.set_app(group.nodes[j], app);
            }
            ports.insert(group.id, group.port.clone());
            groups.push(group);
        }
        world.kick();
        let router = Router::new(board.clone(), ports);
        SimCluster { world, spec, board, meta, groups, router, quantum: SimDuration::from_millis(1) }
    }

    /// Current simulated time, µs.
    pub fn now_us(&self) -> u64 {
        self.world.now().as_micros()
    }
}

impl Cluster for SimCluster {
    fn advance(&mut self) {
        self.world.run_for(self.quantum);
        self.router.pump();
    }

    fn router(&mut self) -> &mut Router {
        &mut self.router
    }

    fn meta_port(&self) -> GatewayPort {
        self.meta.port.clone()
    }

    fn halt(&mut self) -> bool {
        for group in &self.groups {
            group.port.push(ShardOp::Halt.encode());
        }
        self.meta.port.push("Q".to_string());
        self.world.run_until_apps_done(SimDuration::from_secs(30))
    }
}

// ---------------------------------------------------------------------
// Live backend
// ---------------------------------------------------------------------

/// The sharded cluster on the live runtime: one pump thread per
/// member, identical node/member layout to [`SimCluster`].
pub struct LiveCluster {
    /// The cluster's shape.
    pub spec: ShardSpec,
    /// The routing board the meta members publish into.
    pub board: MapBoard,
    /// Meta-group harness handles.
    pub meta: ShardGroup,
    /// Data-group harness handles, in group-id order.
    pub groups: Vec<ShardGroup>,
    router: Router,
    threads: Vec<PumpThread>,
}

/// A `LiveHost::pump` thread, handing back the app (and the surviving
/// handle, unless the app stopped terminally) at join time.
type PumpThread = std::thread::JoinHandle<(Box<dyn GroupApp>, Option<GroupHandle>)>;

impl LiveCluster {
    /// Builds, forms and starts the cluster on a live fabric with the
    /// given fault plan. Joins are strictly sequential, so member ids
    /// (and the gateway member) match the simulated layout.
    pub fn new(spec: ShardSpec, fault: FaultPlan) -> Self {
        let amoeba = Amoeba::new(spec.seed, fault);
        Self::with_amoeba(spec, amoeba)
    }

    /// Same, over an already-built runtime — e.g. one speaking real
    /// UDP sockets via `Amoeba::over_transport` (DESIGN.md §12).
    pub fn with_amoeba(spec: ShardSpec, amoeba: Amoeba) -> Self {
        let map = spec.initial_map();
        let board = new_board(map.clone());
        let (meta, meta_apps) = build_meta_group(&spec, &map, &board, spec.poll);
        let mut handles: Vec<GroupHandle> = Vec::new();
        let mut apps: Vec<Box<dyn GroupApp>> = Vec::new();

        let form = |amoeba: &Amoeba,
                    id: u64,
                    config: GroupConfig,
                    count: usize,
                    handles: &mut Vec<GroupHandle>| {
            for j in 0..count {
                let h = if j == 0 {
                    amoeba.create_group(GroupId(id), config.clone())
                } else {
                    amoeba.join_group(GroupId(id), config.clone())
                };
                handles.push(h.unwrap_or_else(|e| panic!("group {id} member {j}: {e:?}")));
            }
        };

        form(&amoeba, META_GROUP_ID, spec.config_for(0), spec.meta_members, &mut handles);
        apps.extend(meta_apps);
        let mut groups = Vec::new();
        let mut ports = BTreeMap::new();
        for g in 0..spec.data_groups() {
            let (group, group_apps) = build_data_group(&spec, g, &map, spec.poll);
            form(&amoeba, group.id, spec.config_for(g + 1), spec.members, &mut handles);
            apps.extend(group_apps);
            ports.insert(group.id, group.port.clone());
            groups.push(group);
        }

        // Every member formed; now start the pumps.
        let threads = handles
            .into_iter()
            .zip(apps)
            .map(|(h, app)| std::thread::spawn(move || LiveHost::pump(h, app)))
            .collect();
        let router = Router::new(board.clone(), ports);
        LiveCluster { spec, board, meta, groups, router, threads }
    }
}

impl Cluster for LiveCluster {
    fn advance(&mut self) {
        std::thread::sleep(Duration::from_millis(2));
        self.router.pump();
    }

    fn router(&mut self) -> &mut Router {
        &mut self.router
    }

    fn meta_port(&self) -> GatewayPort {
        self.meta.port.clone()
    }

    fn halt(&mut self) -> bool {
        for group in &self.groups {
            group.port.push(ShardOp::Halt.encode());
        }
        self.meta.port.push("Q".to_string());
        // Stopped apps hand their membership back; every handle must
        // outlive every app (Ctx::stop's contract), so collect them
        // all before dropping any.
        let mut kept = Vec::new();
        for t in self.threads.drain(..) {
            let (_app, handle) = t.join().expect("pump thread panicked");
            kept.push(handle);
        }
        drop(kept);
        true
    }
}
