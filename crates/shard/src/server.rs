//! The data-group replica: a sharded KV state machine driven entirely
//! by the group's total order.
//!
//! Every member of a data group runs one [`ShardServerApp`]. All state
//! transitions — writes, freezes, installs, retires, 2PC lock traffic
//! — are applications of totally-ordered messages, so replicas stay
//! identical by construction. The member that is also the group's
//! gateway additionally emits a [`Reply`] for each operation *it*
//! originated, at the operation's delivery point (i.e. once the
//! operation holds a position in the total order and has been applied
//! locally).
//!
//! Range ownership lives here redundantly with the shard map: a
//! replica nacks operations for ranges it does not own (`WrongShard`,
//! the router's cue to refresh its map) and for ranges frozen by an
//! in-flight move (`Frozen`, the router's cue to retry shortly). A
//! frozen range refuses reads as well as writes — the range has
//! exactly one serving group at every instant, so a cross-shard read
//! can never observe a half-moved range.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

use amoeba_app::{AppEvent, Ctx, GroupApp, TimerId};
use amoeba_core::{GroupEvent, MemberId};

use crate::gateway::Gateway;
use crate::map::{key_hash, range_contains, range_covers};
use crate::op::{unframe, NackReason, Reply, ShardOp};

/// A replica's KV store, shared with the harness for final-state
/// inspection (the replica holds the only writer during a run).
pub type SharedStore = Arc<Mutex<BTreeMap<String, String>>>;
/// A replica's delivery log of `(origin member, gateway seq)` pairs,
/// shared with the harness for delivery auditing.
pub type SharedLog = Arc<Mutex<Vec<(u32, u64)>>>;

/// The sharded-KV replica app. See the module docs.
pub struct ShardServerApp {
    /// Ranges this group serves. Kept as an explicit list (not derived
    /// from the map board) so ownership changes are totally ordered
    /// with the data they govern.
    owned: Vec<(u64, u64)>,
    /// Owned ranges currently frozen for a move.
    frozen: Vec<(u64, u64)>,
    store: SharedStore,
    /// 2PC locks: key → (transaction, attempt, staged value).
    locks: BTreeMap<String, (u64, u64, String)>,
    /// Move ids already applied — a re-delivered move step (a gateway
    /// retry after an ambiguous send) must be a no-op, or a duplicate
    /// `Install` would clobber writes applied after the move committed.
    applied_moves: BTreeSet<u64>,
    /// Per-transaction highest attempt resolved here (committed or
    /// aborted). 2PC traffic at or below the resolved attempt is a
    /// stale duplicate and is ignored — a late re-delivered `Prepare`
    /// must never re-acquire locks nothing will ever release.
    tx_resolved: BTreeMap<u64, u64>,
    log: SharedLog,
    /// Present on the gateway member only.
    gateway: Option<Gateway>,
    me: MemberId,
}

impl ShardServerApp {
    /// A replica initially owning `owned`, with harness-shared store
    /// and delivery log. Pass a [`Gateway`] on the gateway member.
    pub fn new(
        owned: Vec<(u64, u64)>,
        store: SharedStore,
        log: SharedLog,
        gateway: Option<Gateway>,
    ) -> Self {
        ShardServerApp {
            owned,
            frozen: Vec::new(),
            store,
            locks: BTreeMap::new(),
            applied_moves: BTreeSet::new(),
            tx_resolved: BTreeMap::new(),
            log,
            gateway,
            me: MemberId(u32::MAX),
        }
    }

    fn owns(&self, h: u64) -> bool {
        self.owned.iter().any(|&r| range_contains(r, h))
    }

    fn is_frozen(&self, h: u64) -> bool {
        self.frozen.iter().any(|&r| range_contains(r, h))
    }

    /// `WrongShard`/`Frozen` gate shared by every keyed operation.
    fn availability(&self, key: &str) -> Option<NackReason> {
        let h = key_hash(key);
        if !self.owns(h) {
            Some(NackReason::WrongShard)
        } else if self.is_frozen(h) {
            Some(NackReason::Frozen)
        } else {
            None
        }
    }

    fn reply(&self, is_origin: bool, r: Reply) {
        if is_origin {
            if let Some(gw) = &self.gateway {
                gw.reply(r);
            }
        }
    }

    /// Applies one delivered operation; replies if we originated it.
    fn apply(&mut self, ctx: &mut dyn Ctx, is_origin: bool, op: ShardOp) {
        match op {
            ShardOp::Put { id, key, value } => {
                let verdict = self.availability(&key).or_else(|| {
                    self.locks.contains_key(&key).then_some(NackReason::Locked)
                });
                match verdict {
                    Some(why) => self.reply(is_origin, Reply::Nacked { id, why }),
                    None => {
                        self.store.lock().unwrap().insert(key, value);
                        self.reply(is_origin, Reply::Acked { id, value: None });
                    }
                }
            }
            ShardOp::Get { id, key } => match self.availability(&key) {
                Some(why) => self.reply(is_origin, Reply::Nacked { id, why }),
                None => {
                    let value = self.store.lock().unwrap().get(&key).cloned();
                    self.reply(is_origin, Reply::Acked { id, value });
                }
            },
            ShardOp::Fence { id, attempt, keys } => {
                if let Some(why) = keys.iter().find_map(|k| self.availability(k)) {
                    self.reply(is_origin, Reply::Nacked { id, why });
                } else {
                    let store = self.store.lock().unwrap();
                    let values =
                        keys.iter().map(|k| (k.clone(), store.get(k).cloned())).collect();
                    drop(store);
                    self.reply(is_origin, Reply::FenceRead { id, attempt, values });
                }
            }
            ShardOp::Freeze { mv, start, end } => {
                if self.applied_moves.contains(&mv) {
                    // Duplicate delivery; the first application already
                    // froze the range and replied.
                    return;
                }
                if !self.owned.iter().any(|&r| range_covers(r, (start, end))) {
                    self.reply(is_origin, Reply::Nacked { id: mv, why: NackReason::WrongShard });
                    return;
                }
                // Never freeze over staged 2PC locks: the snapshot
                // would exclude them, and a commit acked after the
                // destination installed that snapshot would be an
                // acked write the destination never sees. Nack instead
                // — the controller retries the freeze once the
                // transaction resolves (prepares arriving after the
                // freeze are rejected `Frozen`, so the wait is finite).
                if self.locks.keys().any(|k| range_contains((start, end), key_hash(k))) {
                    self.reply(is_origin, Reply::Nacked { id: mv, why: NackReason::Locked });
                    return;
                }
                self.applied_moves.insert(mv);
                if !self.frozen.contains(&(start, end)) {
                    self.frozen.push((start, end));
                }
                // The snapshot is taken at this delivery point: every
                // previously-acked write to the range is in the store,
                // every later write will be nacked `Frozen` until the
                // move commits elsewhere.
                let entries = self
                    .store
                    .lock()
                    .unwrap()
                    .iter()
                    .filter(|(k, _)| range_contains((start, end), key_hash(k)))
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                self.reply(is_origin, Reply::Frozen { mv, entries });
            }
            ShardOp::Install { mv, start, end, entries } => {
                if !self.applied_moves.insert(mv) {
                    // Duplicate delivery: re-inserting the snapshot
                    // would clobber writes applied since the move
                    // committed.
                    return;
                }
                if !self.owned.contains(&(start, end)) {
                    self.owned.push((start, end));
                }
                let mut store = self.store.lock().unwrap();
                for (k, v) in entries {
                    store.insert(k, v);
                }
                drop(store);
                self.reply(is_origin, Reply::Installed { mv });
            }
            ShardOp::Retire { mv, start, end } => {
                if !self.applied_moves.insert(mv) {
                    // Duplicate delivery: the range may have moved back
                    // here since; dropping it again would lose data.
                    return;
                }
                self.owned.retain(|&r| r != (start, end));
                self.frozen.retain(|&r| r != (start, end));
                self.store
                    .lock()
                    .unwrap()
                    .retain(|k, _| !range_contains((start, end), key_hash(k)));
                // Freeze refuses ranges with staged locks and prepares
                // are rejected while frozen, so no lock can be in a
                // retired range — nothing to clean up here.
                debug_assert!(
                    !self.locks.keys().any(|k| range_contains((start, end), key_hash(k))),
                    "retired range [{start}, {end}) still holds 2PC locks"
                );
                self.reply(is_origin, Reply::Retired { mv });
            }
            ShardOp::Prepare { tx, attempt, writes } => {
                if self.tx_resolved.get(&tx).is_some_and(|&a| a >= attempt) {
                    // Stale duplicate: this attempt already committed
                    // or aborted here. Re-staging its locks would leave
                    // them held forever (no further Commit/Abort will
                    // arrive), wedging every future write to the keys.
                    return;
                }
                let verdict = writes.iter().find_map(|(k, _)| {
                    self.availability(k).or_else(|| {
                        self.locks
                            .get(k)
                            .is_some_and(|&(owner, _, _)| owner != tx)
                            .then_some(NackReason::Locked)
                    })
                });
                match verdict {
                    Some(why) => self.reply(is_origin, Reply::TxRejected { tx, attempt, why }),
                    None => {
                        for (k, v) in writes {
                            self.locks.insert(k, (tx, attempt, v));
                        }
                        self.reply(is_origin, Reply::TxPrepared { tx, attempt });
                    }
                }
            }
            ShardOp::Commit { tx, attempt } => {
                if self.tx_resolved.get(&tx).is_some_and(|&a| a >= attempt) {
                    return; // duplicate delivery; already resolved
                }
                let staged: Vec<(String, String)> = self
                    .locks
                    .iter()
                    .filter(|(_, &(owner, a, _))| owner == tx && a == attempt)
                    .map(|(k, (_, _, v))| (k.clone(), v.clone()))
                    .collect();
                // Freeze refuses ranges with staged locks, so staged
                // keys are owned and unfrozen here by invariant; if
                // that ever breaks, refuse to ack writes a move's
                // snapshot may have missed — the router aborts and
                // re-runs the transaction under a fresh attempt.
                if let Some(why) = staged.iter().find_map(|(k, _)| self.availability(k)) {
                    self.reply(is_origin, Reply::TxRejected { tx, attempt, why });
                    return;
                }
                self.tx_resolved.insert(tx, attempt);
                let mut store = self.store.lock().unwrap();
                for (k, v) in staged {
                    self.locks.remove(&k);
                    store.insert(k, v);
                }
                drop(store);
                self.reply(is_origin, Reply::TxCommitted { tx, attempt });
            }
            ShardOp::Abort { tx, attempt } => {
                // Drop only locks staged at or below this attempt — a
                // stale duplicate Abort must not release locks a newer
                // prepare round has staged since. Unlike Commit, an
                // Abort always replies: a replica that already resolved
                // the attempt (it committed, then the router learned
                // another group refused) still owes the abort round an
                // answer, and the router filters replies by attempt.
                if self.tx_resolved.get(&tx).is_none_or(|&a| a < attempt) {
                    self.tx_resolved.insert(tx, attempt);
                }
                self.locks.retain(|_, &mut (owner, a, _)| owner != tx || a > attempt);
                self.reply(is_origin, Reply::TxAborted { tx, attempt });
            }
            ShardOp::Halt => ctx.stop(),
        }
    }
}

impl GroupApp for ShardServerApp {
    fn on_start(&mut self, ctx: &mut dyn Ctx) {
        self.me = ctx.info().me;
        if let Some(gw) = &mut self.gateway {
            gw.on_start(ctx);
        }
    }

    fn on_event(&mut self, ctx: &mut dyn Ctx, event: AppEvent) {
        match event {
            AppEvent::Group(GroupEvent::Message { origin, payload, .. }) => {
                let Ok(text) = std::str::from_utf8(&payload) else { return };
                let Some((gseq, body)) = unframe(text) else { return };
                self.log.lock().unwrap().push((origin.0, gseq));
                if let Some(op) = ShardOp::decode(body) {
                    self.apply(ctx, origin == self.me, op);
                }
            }
            AppEvent::Group(GroupEvent::ViewInstalled { .. }) => {
                if let Some(gw) = &mut self.gateway {
                    gw.on_view_installed(ctx);
                }
            }
            // With auto-reset the runtime recovers on its own;
            // otherwise the replica initiates recovery (paper §2.1),
            // accepting any survivor set.
            AppEvent::Group(GroupEvent::SequencerSuspected) if !ctx.config().auto_reset => {
                ctx.reset_group(1);
            }
            AppEvent::Group(GroupEvent::Expelled) => ctx.stop(),
            AppEvent::SendDone(r) => {
                if let Some(gw) = &mut self.gateway {
                    gw.on_send_done(ctx, r.is_ok());
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn Ctx, timer: TimerId) {
        if let Some(gw) = &mut self.gateway {
            gw.on_timer(ctx, timer);
        }
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use amoeba_core::{GroupConfig, GroupId, GroupInfo, MemberMeta, Seqno, ViewId};
    use amoeba_flip::FlipAddress;
    use bytes::Bytes;

    use crate::op::frame;

    use super::*;

    /// A do-nothing stub [`Ctx`] presenting a real single-member view —
    /// the full `on_event` surface (which reads `info` at start and
    /// `config` on suspicion) must be drivable through it, not just the
    /// `apply` core, so hostile-frame tests can cover every arm.
    struct NullCtx;

    impl Ctx for NullCtx {
        fn send(&mut self, _: bytes::Bytes) {}
        fn reset_group(&mut self, _: usize) {}
        fn leave(&mut self) {}
        fn crash(&mut self) {}
        fn set_timer(&mut self, _: TimerId, _: Duration) {}
        fn cancel_timer(&mut self, _: TimerId) {}
        fn now(&self) -> Duration {
            Duration::ZERO
        }
        fn info(&self) -> GroupInfo {
            let founder = MemberMeta { id: MemberId(0), addr: FlipAddress::process(1) };
            GroupInfo {
                group: GroupId(1),
                me: founder.id,
                my_addr: founder.addr,
                view: ViewId::INITIAL,
                members: vec![founder],
                sequencer: founder.id,
                is_sequencer: true,
                resilience: 0,
                last_delivered: Seqno::ZERO,
                history_len: 0,
                recovering: false,
            }
        }
        fn config(&self) -> GroupConfig {
            GroupConfig::default()
        }
        fn stop(&mut self) {}
    }

    fn replica(owned: Vec<(u64, u64)>) -> (ShardServerApp, crate::gateway::GatewayPort) {
        let port = crate::gateway::GatewayPort::new();
        let app = ShardServerApp::new(
            owned,
            Arc::new(Mutex::new(BTreeMap::new())),
            Arc::new(Mutex::new(Vec::new())),
            Some(crate::gateway::Gateway::new(port.clone(), Duration::from_millis(1))),
        );
        (app, port)
    }

    fn replies(port: &crate::gateway::GatewayPort) -> Vec<Reply> {
        port.outbox.lock().unwrap().drain(..).collect()
    }

    fn value_of(app: &ShardServerApp, key: &str) -> Option<String> {
        app.store.lock().unwrap().get(key).cloned()
    }

    #[test]
    fn duplicate_install_does_not_clobber_later_writes() {
        let (mut app, port) = replica(Vec::new());
        let mut ctx = NullCtx;
        let install = ShardOp::Install {
            mv: 1,
            start: 0,
            end: 0,
            entries: vec![("k".into(), "snapshot".into())],
        };
        app.apply(&mut ctx, true, install.clone());
        assert!(matches!(replies(&port)[..], [Reply::Installed { mv: 1 }]));
        app.apply(&mut ctx, true, ShardOp::Put { id: 2, key: "k".into(), value: "newer".into() });
        assert!(matches!(replies(&port)[..], [Reply::Acked { id: 2, .. }]));
        // A gateway retry after an ambiguous send re-delivers the
        // Install; it must be a no-op, not a snapshot restore.
        app.apply(&mut ctx, true, install);
        assert!(replies(&port).is_empty(), "duplicate Install must not re-reply");
        assert_eq!(value_of(&app, "k").as_deref(), Some("newer"));
    }

    #[test]
    fn duplicate_retire_does_not_drop_a_reinstalled_range() {
        let (mut app, port) = replica(vec![(0, 0)]);
        let mut ctx = NullCtx;
        app.apply(&mut ctx, true, ShardOp::Put { id: 1, key: "k".into(), value: "v1".into() });
        app.apply(&mut ctx, true, ShardOp::Freeze { mv: 2, start: 0, end: 0 });
        app.apply(&mut ctx, true, ShardOp::Retire { mv: 3, start: 0, end: 0 });
        assert!(app.owned.is_empty());
        // The range moves back here under a later move id...
        app.apply(
            &mut ctx,
            true,
            ShardOp::Install { mv: 4, start: 0, end: 0, entries: vec![("k".into(), "v2".into())] },
        );
        replies(&port);
        // ...and the old Retire is re-delivered. It must not retire
        // the re-installed range.
        app.apply(&mut ctx, true, ShardOp::Retire { mv: 3, start: 0, end: 0 });
        assert!(replies(&port).is_empty());
        assert_eq!(app.owned, vec![(0, 0)]);
        assert_eq!(value_of(&app, "k").as_deref(), Some("v2"));
    }

    #[test]
    fn freeze_refuses_staged_locks_until_the_tx_resolves() {
        let (mut app, port) = replica(vec![(0, 0)]);
        let mut ctx = NullCtx;
        app.apply(
            &mut ctx,
            true,
            ShardOp::Prepare { tx: 7, attempt: 1, writes: vec![("k".into(), "v".into())] },
        );
        assert!(matches!(replies(&port)[..], [Reply::TxPrepared { tx: 7, attempt: 1 }]));
        // The staged lock is not in the store yet, so a freeze snapshot
        // here would lose the write once the commit acks: refuse it.
        app.apply(&mut ctx, true, ShardOp::Freeze { mv: 9, start: 0, end: 0 });
        assert!(matches!(
            replies(&port)[..],
            [Reply::Nacked { id: 9, why: NackReason::Locked }]
        ));
        app.apply(&mut ctx, true, ShardOp::Commit { tx: 7, attempt: 1 });
        assert!(matches!(replies(&port)[..], [Reply::TxCommitted { tx: 7, attempt: 1 }]));
        // The retried freeze now succeeds and its snapshot carries the
        // committed write.
        app.apply(&mut ctx, true, ShardOp::Freeze { mv: 9, start: 0, end: 0 });
        match &replies(&port)[..] {
            [Reply::Frozen { mv: 9, entries }] => {
                assert_eq!(entries, &vec![("k".to_string(), "v".to_string())]);
            }
            other => panic!("expected Frozen, got {other:?}"),
        }
    }

    #[test]
    fn late_duplicate_prepare_after_commit_stays_ignored() {
        let (mut app, port) = replica(vec![(0, 0)]);
        let mut ctx = NullCtx;
        let prepare =
            ShardOp::Prepare { tx: 5, attempt: 1, writes: vec![("k".into(), "v".into())] };
        app.apply(&mut ctx, true, prepare.clone());
        app.apply(&mut ctx, true, ShardOp::Commit { tx: 5, attempt: 1 });
        replies(&port);
        // The re-delivered Prepare must not re-acquire locks: no
        // Commit/Abort will ever arrive for them again.
        app.apply(&mut ctx, true, prepare);
        assert!(replies(&port).is_empty(), "stale Prepare must not reply");
        assert!(app.locks.is_empty(), "stale Prepare re-acquired locks");
        app.apply(&mut ctx, true, ShardOp::Put { id: 8, key: "k".into(), value: "w".into() });
        assert!(
            matches!(replies(&port)[..], [Reply::Acked { id: 8, .. }]),
            "key wedged by a phantom lock"
        );
    }

    #[test]
    fn stale_abort_does_not_release_a_newer_attempts_locks() {
        let (mut app, port) = replica(vec![(0, 0)]);
        let mut ctx = NullCtx;
        app.apply(
            &mut ctx,
            true,
            ShardOp::Prepare { tx: 6, attempt: 1, writes: vec![("k".into(), "v".into())] },
        );
        app.apply(&mut ctx, true, ShardOp::Abort { tx: 6, attempt: 1 });
        app.apply(
            &mut ctx,
            true,
            ShardOp::Prepare { tx: 6, attempt: 2, writes: vec![("k".into(), "v".into())] },
        );
        replies(&port);
        // A re-delivered Abort of the old attempt arrives after the new
        // prepare round staged its locks: they must survive.
        app.apply(&mut ctx, true, ShardOp::Abort { tx: 6, attempt: 1 });
        assert!(matches!(replies(&port)[..], [Reply::TxAborted { tx: 6, attempt: 1 }]));
        assert_eq!(app.locks.len(), 1, "stale Abort released the new attempt's locks");
        app.apply(&mut ctx, true, ShardOp::Commit { tx: 6, attempt: 2 });
        assert!(matches!(replies(&port)[..], [Reply::TxCommitted { tx: 6, attempt: 2 }]));
        assert_eq!(value_of(&app, "k").as_deref(), Some("v"));
    }

    /// Delivers raw bytes through the full `on_event` surface, exactly
    /// as a group message would arrive off the wire.
    fn deliver(app: &mut ShardServerApp, ctx: &mut NullCtx, seqno: u64, payload: Bytes) {
        app.on_event(
            ctx,
            AppEvent::Group(GroupEvent::Message {
                seqno: Seqno(seqno),
                origin: MemberId(3),
                payload,
            }),
        );
    }

    /// A replica shares its group with gateways that relay arbitrary
    /// client bytes; none of them may panic it or corrupt its store.
    /// Every malformed shape is dropped before `apply`; only payloads
    /// that at least carry a frame reach the delivery log.
    #[test]
    fn hostile_payloads_are_dropped_without_panicking() {
        let (mut app, port) = replica(vec![(0, 0)]);
        let mut ctx = NullCtx;
        app.on_start(&mut ctx);
        replies(&port);
        let cases: &[&[u8]] = &[
            b"",                         // empty
            b"\xff\xfe\x80",             // not UTF-8
            b"no-frame-at-all",          // UTF-8 but no gseq frame
            b"|P|1|k|v",                 // empty gseq
            b"nan|P|1|k|v",              // non-numeric gseq
            b"99999999999999999999|P|1|k|v", // gseq overflows u64
        ];
        for raw in cases {
            deliver(&mut app, &mut ctx, 1, Bytes::copy_from_slice(raw));
        }
        assert!(app.log.lock().unwrap().is_empty(), "unframed bytes must not be logged");

        // Framed but bodies that must fail `ShardOp::decode`.
        let bad_bodies = [
            "",                // no tag
            "Z|1|k|v",         // unknown tag
            "P|nan|k|v",       // non-numeric id
            "P|1|k",           // missing value
            "P|1|k|v|extra",   // trailing field
            "F|1|2",           // Freeze missing end
            "TC|1",            // Commit missing attempt
            "I|1|0|0",         // Install missing entries
        ];
        for (i, body) in bad_bodies.iter().enumerate() {
            deliver(&mut app, &mut ctx, i as u64 + 1, Bytes::from(frame(i as u64 + 1, body)));
        }
        // Framed garbage is logged (it held a slot in the total order)
        // but decodes to nothing, so nothing was applied or replied.
        assert_eq!(app.log.lock().unwrap().len(), bad_bodies.len());
        assert!(replies(&port).is_empty(), "garbage must not produce replies");
        assert!(app.store.lock().unwrap().is_empty(), "garbage must not write");

        // The replica still works after the barrage.
        app.apply(&mut ctx, true, ShardOp::Put { id: 1, key: "k".into(), value: "v".into() });
        assert!(matches!(replies(&port)[..], [Reply::Acked { id: 1, .. }]));
    }

    /// A `Put` routed to the wrong group (its key hashes outside every
    /// owned range) nacks `WrongShard` — through the full `on_event`
    /// path, origin included, so the gateway's misrouted client sees
    /// the refusal instead of a hang or a misplaced write.
    #[test]
    fn misrouted_put_nacks_wrong_shard_through_on_event() {
        // Own a range that cannot contain any key: [h, h) is empty
        // unless h wraps — pick the hash of the probe key plus one.
        let h = crate::map::key_hash("misrouted");
        let (mut app, port) = replica(vec![(h.wrapping_add(1), h.wrapping_add(1))]);
        let mut ctx = NullCtx;
        app.on_start(&mut ctx);
        let op = ShardOp::Put { id: 9, key: "misrouted".into(), value: "v".into() };
        // origin == me (MemberId::max placeholder is never origin 3, so
        // route through apply's origin flag directly via on_event with
        // the replica as origin).
        app.me = MemberId(3);
        deliver(&mut app, &mut ctx, 1, Bytes::from(frame(1, &op.encode())));
        assert!(
            matches!(replies(&port)[..], [Reply::Nacked { id: 9, why: NackReason::WrongShard }]),
            "a misrouted Put must nack WrongShard"
        );
        assert!(app.store.lock().unwrap().is_empty(), "misrouted Put must not write");
    }

    /// `SequencerSuspected` consults `ctx.config()` — the stub now
    /// answers it, and with auto-reset off the replica initiates the
    /// recovery itself.
    #[test]
    fn sequencer_suspicion_is_handled_through_the_stub_ctx() {
        let (mut app, _port) = replica(vec![(0, 0)]);
        let mut ctx = NullCtx;
        app.on_event(&mut ctx, AppEvent::Group(GroupEvent::SequencerSuspected));
    }
}
