//! The data-group replica: a sharded KV state machine driven entirely
//! by the group's total order.
//!
//! Every member of a data group runs one [`ShardServerApp`]. All state
//! transitions — writes, freezes, installs, retires, 2PC lock traffic
//! — are applications of totally-ordered messages, so replicas stay
//! identical by construction. The member that is also the group's
//! gateway additionally emits a [`Reply`] for each operation *it*
//! originated, at the operation's delivery point (i.e. once the
//! operation holds a position in the total order and has been applied
//! locally).
//!
//! Range ownership lives here redundantly with the shard map: a
//! replica nacks operations for ranges it does not own (`WrongShard`,
//! the router's cue to refresh its map) and for ranges frozen by an
//! in-flight move (`Frozen`, the router's cue to retry shortly). A
//! frozen range refuses reads as well as writes — the range has
//! exactly one serving group at every instant, so a cross-shard read
//! can never observe a half-moved range.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use amoeba_app::{AppEvent, Ctx, GroupApp, TimerId};
use amoeba_core::{GroupEvent, MemberId};

use crate::gateway::Gateway;
use crate::map::{key_hash, range_contains, range_covers};
use crate::op::{unframe, NackReason, Reply, ShardOp};

/// A replica's KV store, shared with the harness for final-state
/// inspection (the replica holds the only writer during a run).
pub type SharedStore = Arc<Mutex<BTreeMap<String, String>>>;
/// A replica's delivery log of `(origin member, gateway seq)` pairs,
/// shared with the harness for delivery auditing.
pub type SharedLog = Arc<Mutex<Vec<(u32, u64)>>>;

/// The sharded-KV replica app. See the module docs.
pub struct ShardServerApp {
    /// Ranges this group serves. Kept as an explicit list (not derived
    /// from the map board) so ownership changes are totally ordered
    /// with the data they govern.
    owned: Vec<(u64, u64)>,
    /// Owned ranges currently frozen for a move.
    frozen: Vec<(u64, u64)>,
    store: SharedStore,
    /// 2PC locks: key → (transaction, staged value).
    locks: BTreeMap<String, (u64, String)>,
    log: SharedLog,
    /// Present on the gateway member only.
    gateway: Option<Gateway>,
    me: MemberId,
}

impl ShardServerApp {
    /// A replica initially owning `owned`, with harness-shared store
    /// and delivery log. Pass a [`Gateway`] on the gateway member.
    pub fn new(
        owned: Vec<(u64, u64)>,
        store: SharedStore,
        log: SharedLog,
        gateway: Option<Gateway>,
    ) -> Self {
        ShardServerApp { owned, frozen: Vec::new(), store, locks: BTreeMap::new(), log, gateway, me: MemberId(u32::MAX) }
    }

    fn owns(&self, h: u64) -> bool {
        self.owned.iter().any(|&r| range_contains(r, h))
    }

    fn is_frozen(&self, h: u64) -> bool {
        self.frozen.iter().any(|&r| range_contains(r, h))
    }

    /// `WrongShard`/`Frozen` gate shared by every keyed operation.
    fn availability(&self, key: &str) -> Option<NackReason> {
        let h = key_hash(key);
        if !self.owns(h) {
            Some(NackReason::WrongShard)
        } else if self.is_frozen(h) {
            Some(NackReason::Frozen)
        } else {
            None
        }
    }

    fn reply(&self, is_origin: bool, r: Reply) {
        if is_origin {
            if let Some(gw) = &self.gateway {
                gw.reply(r);
            }
        }
    }

    /// Applies one delivered operation; replies if we originated it.
    fn apply(&mut self, ctx: &mut dyn Ctx, is_origin: bool, op: ShardOp) {
        match op {
            ShardOp::Put { id, key, value } => {
                let verdict = self.availability(&key).or_else(|| {
                    self.locks.contains_key(&key).then_some(NackReason::Locked)
                });
                match verdict {
                    Some(why) => self.reply(is_origin, Reply::Nacked { id, why }),
                    None => {
                        self.store.lock().unwrap().insert(key, value);
                        self.reply(is_origin, Reply::Acked { id, value: None });
                    }
                }
            }
            ShardOp::Get { id, key } => match self.availability(&key) {
                Some(why) => self.reply(is_origin, Reply::Nacked { id, why }),
                None => {
                    let value = self.store.lock().unwrap().get(&key).cloned();
                    self.reply(is_origin, Reply::Acked { id, value });
                }
            },
            ShardOp::Fence { id, keys } => {
                if let Some(why) = keys.iter().find_map(|k| self.availability(k)) {
                    self.reply(is_origin, Reply::Nacked { id, why });
                } else {
                    let store = self.store.lock().unwrap();
                    let values =
                        keys.iter().map(|k| (k.clone(), store.get(k).cloned())).collect();
                    drop(store);
                    self.reply(is_origin, Reply::FenceRead { id, values });
                }
            }
            ShardOp::Freeze { mv, start, end } => {
                if !self.owned.iter().any(|&r| range_covers(r, (start, end))) {
                    self.reply(is_origin, Reply::Nacked { id: mv, why: NackReason::WrongShard });
                    return;
                }
                if !self.frozen.contains(&(start, end)) {
                    self.frozen.push((start, end));
                }
                // The snapshot is taken at this delivery point: every
                // previously-acked write to the range is in the store,
                // every later write will be nacked `Frozen` until the
                // move commits elsewhere.
                let entries = self
                    .store
                    .lock()
                    .unwrap()
                    .iter()
                    .filter(|(k, _)| range_contains((start, end), key_hash(k)))
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                self.reply(is_origin, Reply::Frozen { mv, entries });
            }
            ShardOp::Install { mv, start, end, entries } => {
                if !self.owned.contains(&(start, end)) {
                    self.owned.push((start, end));
                }
                let mut store = self.store.lock().unwrap();
                for (k, v) in entries {
                    store.insert(k, v);
                }
                drop(store);
                self.reply(is_origin, Reply::Installed { mv });
            }
            ShardOp::Retire { mv, start, end } => {
                self.owned.retain(|&r| r != (start, end));
                self.frozen.retain(|&r| r != (start, end));
                self.store
                    .lock()
                    .unwrap()
                    .retain(|k, _| !range_contains((start, end), key_hash(k)));
                self.locks.retain(|k, _| !range_contains((start, end), key_hash(k)));
                self.reply(is_origin, Reply::Retired { mv });
            }
            ShardOp::Prepare { tx, writes } => {
                let verdict = writes.iter().find_map(|(k, _)| {
                    self.availability(k).or_else(|| {
                        self.locks
                            .get(k)
                            .is_some_and(|&(owner, _)| owner != tx)
                            .then_some(NackReason::Locked)
                    })
                });
                match verdict {
                    Some(why) => self.reply(is_origin, Reply::TxRejected { tx, why }),
                    None => {
                        for (k, v) in writes {
                            self.locks.insert(k, (tx, v));
                        }
                        self.reply(is_origin, Reply::TxPrepared { tx });
                    }
                }
            }
            ShardOp::Commit { tx } => {
                let staged: Vec<(String, String)> = self
                    .locks
                    .iter()
                    .filter(|(_, &(owner, _))| owner == tx)
                    .map(|(k, (_, v))| (k.clone(), v.clone()))
                    .collect();
                let mut store = self.store.lock().unwrap();
                for (k, v) in staged {
                    self.locks.remove(&k);
                    store.insert(k, v);
                }
                drop(store);
                self.reply(is_origin, Reply::TxCommitted { tx });
            }
            ShardOp::Abort { tx } => {
                self.locks.retain(|_, &mut (owner, _)| owner != tx);
                self.reply(is_origin, Reply::TxAborted { tx });
            }
            ShardOp::Halt => ctx.stop(),
        }
    }
}

impl GroupApp for ShardServerApp {
    fn on_start(&mut self, ctx: &mut dyn Ctx) {
        self.me = ctx.info().me;
        if let Some(gw) = &mut self.gateway {
            gw.on_start(ctx);
        }
    }

    fn on_event(&mut self, ctx: &mut dyn Ctx, event: AppEvent) {
        match event {
            AppEvent::Group(GroupEvent::Message { origin, payload, .. }) => {
                let Ok(text) = std::str::from_utf8(&payload) else { return };
                let Some((gseq, body)) = unframe(text) else { return };
                self.log.lock().unwrap().push((origin.0, gseq));
                if let Some(op) = ShardOp::decode(body) {
                    self.apply(ctx, origin == self.me, op);
                }
            }
            AppEvent::Group(GroupEvent::ViewInstalled { .. }) => {
                if let Some(gw) = &mut self.gateway {
                    gw.on_view_installed(ctx);
                }
            }
            // With auto-reset the runtime recovers on its own;
            // otherwise the replica initiates recovery (paper §2.1),
            // accepting any survivor set.
            AppEvent::Group(GroupEvent::SequencerSuspected) if !ctx.config().auto_reset => {
                ctx.reset_group(1);
            }
            AppEvent::Group(GroupEvent::Expelled) => ctx.stop(),
            AppEvent::SendDone(r) => {
                if let Some(gw) = &mut self.gateway {
                    gw.on_send_done(ctx, r.is_ok());
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn Ctx, timer: TimerId) {
        if let Some(gw) = &mut self.gateway {
            gw.on_timer(ctx, timer);
        }
    }
}
