//! Cluster-level auditing: per-group delivery audits plus the
//! sharding layer's own invariant — no acknowledged write is ever
//! lost, across any amount of routing, retry and resharding.

use std::collections::BTreeMap;

use amoeba_core::audit::{AuditDelivery, DeliveryAudit, EndFate, MemberRecord, Violation};

use crate::cluster::ShardGroup;
use crate::map::{key_hash, MapBoard};

/// Runs the standard delivery audit over one group's recorded logs.
/// `fates[j]` is member j's end-of-run fate; pass
/// `converged = true` when faults stopped and the run quiesced (live
/// members must then have identical logs).
pub fn audit_group(group: &ShardGroup, fates: &[EndFate], converged: bool) -> Vec<Violation> {
    let mut audit = DeliveryAudit::new().require_convergence(converged);
    let gw = group
        .port
        .member
        .lock()
        .unwrap()
        .unwrap_or(crate::cluster::ShardSpec::gateway_member(group.logs.len()) as u32);
    audit.submitted(gw, *group.port.submitted.lock().unwrap());
    for (j, log) in group.logs.iter().enumerate() {
        audit.member(MemberRecord {
            fate: fates[j],
            deliveries: log
                .lock()
                .unwrap()
                .iter()
                .map(|&(origin, index)| AuditDelivery { origin, index })
                .collect(),
        });
    }
    audit.check()
}

/// Checks that every write the router acknowledged is present, with
/// its last acknowledged value, in the store of the group that owns
/// the key under the final map. `live(group_index)` picks a member
/// whose store is authoritative (i.e. a member that ended live).
///
/// Returns one description per lost write (empty = invariant holds).
pub fn lost_acked_writes(
    acked: &BTreeMap<String, String>,
    board: &MapBoard,
    groups: &[ShardGroup],
    live: impl Fn(usize) -> usize,
) -> Vec<String> {
    let map = board.lock().unwrap().clone();
    let mut lost = Vec::new();
    for (key, value) in acked {
        let owner = map.owner(key_hash(key));
        let Some(gi) = groups.iter().position(|g| g.id == owner) else {
            lost.push(format!("key {key:?}: owning group {owner} has no harness record"));
            continue;
        };
        let member = live(gi);
        let store = groups[gi].stores[member].lock().unwrap();
        match store.get(key) {
            Some(v) if v == value => {}
            Some(v) => lost.push(format!(
                "key {key:?}: acked {value:?} but group {owner} member {member} holds {v:?}"
            )),
            None => lost.push(format!(
                "key {key:?}: acked {value:?} but missing from group {owner} member {member}"
            )),
        }
    }
    lost
}
