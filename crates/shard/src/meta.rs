//! The meta group: a tiny replicated app whose only state is the
//! shard map.
//!
//! Map changes ([`MapCmd`]) are broadcast through the meta group's
//! total order, so every meta member applies the identical command
//! sequence and the map has one well-defined history — the same trick
//! the data groups use for data, applied to the routing metadata
//! itself. After each applied command the member publishes its map
//! onto the shared [`MapBoard`]; the board's epoch guard makes
//! publishes from members at different positions commute.

use amoeba_app::{AppEvent, Ctx, GroupApp, TimerId};
use amoeba_core::GroupEvent;

use crate::gateway::Gateway;
use crate::map::{publish, MapBoard, MapCmd, ShardMap};
use crate::op::unframe;
use crate::server::SharedLog;

/// One meta-group member. The gateway member (see
/// [`crate::gateway`]) carries the inbox the move controller feeds.
pub struct MetaApp {
    map: ShardMap,
    board: MapBoard,
    log: SharedLog,
    gateway: Option<Gateway>,
}

impl MetaApp {
    /// A meta member starting from `initial`, publishing onto `board`.
    pub fn new(initial: ShardMap, board: MapBoard, log: SharedLog, gateway: Option<Gateway>) -> Self {
        MetaApp { map: initial, board, log, gateway }
    }
}

impl GroupApp for MetaApp {
    fn on_start(&mut self, ctx: &mut dyn Ctx) {
        if let Some(gw) = &mut self.gateway {
            gw.on_start(ctx);
        }
    }

    fn on_event(&mut self, ctx: &mut dyn Ctx, event: AppEvent) {
        match event {
            AppEvent::Group(GroupEvent::Message { origin, payload, .. }) => {
                let Ok(text) = std::str::from_utf8(&payload) else { return };
                let Some((gseq, body)) = unframe(text) else { return };
                self.log.lock().unwrap().push((origin.0, gseq));
                if body == "Q" {
                    ctx.stop();
                } else if let Some(cmd) = MapCmd::decode(body) {
                    self.map.apply(&cmd);
                    publish(&self.board, &self.map);
                }
            }
            AppEvent::Group(GroupEvent::ViewInstalled { .. }) => {
                if let Some(gw) = &mut self.gateway {
                    gw.on_view_installed(ctx);
                }
            }
            AppEvent::Group(GroupEvent::SequencerSuspected) if !ctx.config().auto_reset => {
                ctx.reset_group(1);
            }
            AppEvent::Group(GroupEvent::Expelled) => ctx.stop(),
            AppEvent::SendDone(r) => {
                if let Some(gw) = &mut self.gateway {
                    gw.on_send_done(ctx, r.is_ok());
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn Ctx, timer: TimerId) {
        if let Some(gw) = &mut self.gateway {
            gw.on_timer(ctx, timer);
        }
    }
}
