//! Data-plane operations and replies.
//!
//! Every operation a router wants executed is encoded as a short text
//! body, handed to the owning group's *gateway* member, and broadcast
//! by the gateway through that group's total order. The gateway
//! prefixes each body with its own monotone sequence number
//! (`"<gseq>|<body>"`); members log `(origin, gseq)` pairs, which is
//! what [`amoeba_core::audit::DeliveryAudit`]-style checking consumes. A
//! gateway that must retry a failed send re-encodes the body under a
//! *fresh* gseq — the audit tolerates gaps but flags duplicates, so
//! renumbering keeps retries clean.
//!
//! All operations are idempotent at the replica: an ambiguous send
//! (reported failed but actually ordered) that is retried applies
//! twice with the same effect, and the router drops the second reply.
//! Two mechanisms make that exact rather than approximate. Move steps
//! carry a move id and replicas apply each id at most once (a
//! re-delivered `Install` must not clobber writes applied after the
//! move committed). Fences and 2PC operations additionally carry an
//! *attempt* number, bumped by the router each time it re-runs the
//! operation from scratch: replicas ignore 2PC traffic for attempts
//! they have already resolved (committed or aborted), and both sides
//! echo the attempt in replies so the router can discard stragglers
//! from a superseded attempt instead of mixing them into the current
//! one.

/// One operation submitted to a data group. `end == 0` in range fields
/// means the top of the ring (see [`crate::map::range_contains`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardOp {
    /// Write `key = value`. Acked by the gateway once applied on the
    /// owning group.
    Put { id: u64, key: String, value: String },
    /// Read `key`.
    Get { id: u64, key: String },
    /// Cross-shard consistent read: executes at one point of *this*
    /// group's total order; the router assembles one fence per
    /// involved group and retries the whole set (under a fresh
    /// `attempt`) if any group's ownership moved in between (see
    /// DESIGN.md §11.4).
    Fence { id: u64, attempt: u64, keys: Vec<String> },
    /// Move step 1 (at the source): stop serving `[start, end)` and
    /// snapshot its entries at this point of the total order.
    Freeze { mv: u64, start: u64, end: u64 },
    /// Move step 2 (at the destination): adopt `[start, end)` with the
    /// frozen entries.
    Install { mv: u64, start: u64, end: u64, entries: Vec<(String, String)> },
    /// Move step 3 (at the source, after the map committed): drop the
    /// range and its entries.
    Retire { mv: u64, start: u64, end: u64 },
    /// 2PC phase 1: lock the listed keys for transaction `tx` (run
    /// number `attempt`) and stage the writes.
    Prepare { tx: u64, attempt: u64, writes: Vec<(String, String)> },
    /// 2PC phase 2: apply this group's writes staged for `(tx,
    /// attempt)`.
    Commit { tx: u64, attempt: u64 },
    /// 2PC abort: drop this group's locks for `tx` and resolve
    /// `attempt`.
    Abort { tx: u64, attempt: u64 },
    /// Shut the group down: every member stops its app.
    Halt,
}

/// Why a replica refused an operation. All nacks are retryable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NackReason {
    /// The key's range is not owned here — the router's map is stale.
    WrongShard,
    /// The key's range is frozen for an in-flight move.
    Frozen,
    /// The key is locked by an in-flight transaction.
    Locked,
}

/// What the gateway reports back to its router after an operation was
/// applied at the gateway's own position in the total order. Replies
/// stay in-process (gateway and router share an outbox); only
/// operations travel the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Put applied (`value` None) or Get executed (`value` is the
    /// key's value, if present).
    Acked { id: u64, value: Option<String> },
    /// Operation refused; retry (after a map refresh if `WrongShard`).
    Nacked { id: u64, why: NackReason },
    /// Fence executed: one consistent point per key in this group.
    /// Echoes the fence's attempt so the router can discard replies
    /// from a superseded attempt.
    FenceRead { id: u64, attempt: u64, values: Vec<(String, Option<String>)> },
    /// Freeze applied; `entries` is the range snapshot.
    Frozen { mv: u64, entries: Vec<(String, String)> },
    /// Install applied.
    Installed { mv: u64 },
    /// Retire applied.
    Retired { mv: u64 },
    /// All keys locked and writes staged (for this attempt).
    TxPrepared { tx: u64, attempt: u64 },
    /// Some key was unavailable; nothing was locked here.
    TxRejected { tx: u64, attempt: u64, why: NackReason },
    /// Staged writes applied.
    TxCommitted { tx: u64, attempt: u64 },
    /// Locks dropped.
    TxAborted { tx: u64, attempt: u64 },
}

/// Keys and values travel in a pipe/semicolon/equals-delimited text
/// format, so they must avoid those delimiters.
pub fn token_ok(s: &str) -> bool {
    !s.is_empty() && s.len() <= 512 && s.bytes().all(|b| !matches!(b, b'|' | b';' | b'=' | b'\n'))
}

fn encode_entries(entries: &[(String, String)]) -> String {
    let parts: Vec<String> = entries.iter().map(|(k, v)| format!("{k}={v}")).collect();
    parts.join(";")
}

fn decode_entries(s: &str) -> Option<Vec<(String, String)>> {
    if s.is_empty() {
        return Some(Vec::new());
    }
    s.split(';')
        .map(|kv| {
            let (k, v) = kv.split_once('=')?;
            (token_ok(k) && token_ok(v)).then(|| (k.to_string(), v.to_string()))
        })
        .collect()
}

impl ShardOp {
    /// Wire encoding of the operation body (without the gateway's gseq
    /// prefix).
    pub fn encode(&self) -> String {
        match self {
            ShardOp::Put { id, key, value } => format!("P|{id}|{key}|{value}"),
            ShardOp::Get { id, key } => format!("G|{id}|{key}"),
            ShardOp::Fence { id, attempt, keys } => format!("X|{id}|{attempt}|{}", keys.join(";")),
            ShardOp::Freeze { mv, start, end } => format!("F|{mv}|{start}|{end}"),
            ShardOp::Install { mv, start, end, entries } => {
                format!("I|{mv}|{start}|{end}|{}", encode_entries(entries))
            }
            ShardOp::Retire { mv, start, end } => format!("R|{mv}|{start}|{end}"),
            ShardOp::Prepare { tx, attempt, writes } => {
                format!("TP|{tx}|{attempt}|{}", encode_entries(writes))
            }
            ShardOp::Commit { tx, attempt } => format!("TC|{tx}|{attempt}"),
            ShardOp::Abort { tx, attempt } => format!("TA|{tx}|{attempt}"),
            ShardOp::Halt => "Q".to_string(),
        }
    }

    /// Parses [`ShardOp::encode`] output; `None` on any malformed body.
    pub fn decode(s: &str) -> Option<ShardOp> {
        let mut it = s.splitn(2, '|');
        let tag = it.next()?;
        let rest = it.next().unwrap_or("");
        match tag {
            "P" => {
                let mut f = rest.split('|');
                let id = f.next()?.parse().ok()?;
                let key = f.next()?;
                let value = f.next()?;
                (token_ok(key) && token_ok(value) && f.next().is_none()).then(|| ShardOp::Put {
                    id,
                    key: key.to_string(),
                    value: value.to_string(),
                })
            }
            "G" => {
                let (id, key) = rest.split_once('|')?;
                let id = id.parse().ok()?;
                token_ok(key).then(|| ShardOp::Get { id, key: key.to_string() })
            }
            "X" => {
                let mut f = rest.splitn(3, '|');
                let id = f.next()?.parse().ok()?;
                let attempt = f.next()?.parse().ok()?;
                let keys: Option<Vec<String>> = f
                    .next()?
                    .split(';')
                    .map(|k| token_ok(k).then(|| k.to_string()))
                    .collect();
                let keys = keys?;
                (!keys.is_empty()).then_some(ShardOp::Fence { id, attempt, keys })
            }
            "F" | "R" => {
                let mut f = rest.split('|');
                let mv = f.next()?.parse().ok()?;
                let start = f.next()?.parse().ok()?;
                let end = f.next()?.parse().ok()?;
                if f.next().is_some() {
                    return None;
                }
                Some(if tag == "F" {
                    ShardOp::Freeze { mv, start, end }
                } else {
                    ShardOp::Retire { mv, start, end }
                })
            }
            "I" => {
                let mut f = rest.splitn(4, '|');
                let mv = f.next()?.parse().ok()?;
                let start = f.next()?.parse().ok()?;
                let end = f.next()?.parse().ok()?;
                let entries = decode_entries(f.next()?)?;
                Some(ShardOp::Install { mv, start, end, entries })
            }
            "TP" => {
                let mut f = rest.splitn(3, '|');
                let tx = f.next()?.parse().ok()?;
                let attempt = f.next()?.parse().ok()?;
                let writes = decode_entries(f.next()?)?;
                (!writes.is_empty()).then_some(ShardOp::Prepare { tx, attempt, writes })
            }
            "TC" | "TA" => {
                let (tx, attempt) = rest.split_once('|')?;
                let tx = tx.parse().ok()?;
                let attempt = attempt.parse().ok()?;
                Some(if tag == "TC" {
                    ShardOp::Commit { tx, attempt }
                } else {
                    ShardOp::Abort { tx, attempt }
                })
            }
            "Q" => rest.is_empty().then_some(ShardOp::Halt),
            _ => None,
        }
    }
}

/// Frames a body under a gateway sequence number: `"<gseq>|<body>"`.
pub fn frame(gseq: u64, body: &str) -> String {
    format!("{gseq}|{body}")
}

/// Splits a framed payload back into `(gseq, body)`.
pub fn unframe(payload: &str) -> Option<(u64, &str)> {
    let (gseq, body) = payload.split_once('|')?;
    Some((gseq.parse().ok()?, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_codec_round_trips() {
        let ops = [
            ShardOp::Put { id: 1, key: "k".into(), value: "v".into() },
            ShardOp::Get { id: 2, key: "key-2".into() },
            ShardOp::Fence { id: 3, attempt: 2, keys: vec!["a".into(), "b".into()] },
            ShardOp::Freeze { mv: 4, start: 10, end: 0 },
            ShardOp::Install {
                mv: 5,
                start: 0,
                end: 9,
                entries: vec![("a".into(), "1".into()), ("b".into(), "2".into())],
            },
            ShardOp::Install { mv: 6, start: 0, end: 9, entries: vec![] },
            ShardOp::Retire { mv: 7, start: 3, end: 4 },
            ShardOp::Prepare { tx: 8, attempt: 1, writes: vec![("x".into(), "y".into())] },
            ShardOp::Commit { tx: 9, attempt: 3 },
            ShardOp::Abort { tx: 10, attempt: 1 },
            ShardOp::Halt,
        ];
        for op in ops {
            let enc = op.encode();
            assert_eq!(ShardOp::decode(&enc), Some(op), "{enc}");
        }
    }

    #[test]
    fn malformed_bodies_rejected() {
        for bad in [
            "", "Z|1", "P|1|k", "P|x|k|v", "G|1|", "X|1|", "X|1|2|", "X|1|a", "I|1|2|3",
            "Q|extra", "P|1|k|v|w", "TP|1|k=v", "TC|9", "TA|10", "TC|9|x",
        ] {
            assert_eq!(ShardOp::decode(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn framing_round_trips() {
        let p = frame(42, "G|7|k");
        assert_eq!(unframe(&p), Some((42, "G|7|k")));
        assert_eq!(unframe("nope"), None);
    }

    #[test]
    fn token_rules() {
        assert!(token_ok("plain-key_0"));
        assert!(!token_ok(""));
        assert!(!token_ok("a|b"));
        assert!(!token_ok("a=b"));
        assert!(!token_ok("a;b"));
    }
}
