//! The gateway: the one member per group that injects routed
//! operations into the group's total order.
//!
//! A router cannot broadcast into a group it is not a member of, so
//! every group designates one member — member index 1, deliberately
//! *not* the founding sequencer, so a sequencer crash does not sever
//! routing — as its gateway. The gateway polls a shared inbox on an
//! app timer, frames each body under its own monotone sequence number
//! and broadcasts it; because one gateway serializes all routed
//! operations for its group, replicas never see two racing copies of
//! the control plane.
//!
//! Failed sends are retried under a *fresh* sequence number (the
//! delivery audit tolerates per-origin gaps but flags duplicates),
//! either when a recovery installs a new view or on a retry timer —
//! whichever comes first.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use amoeba_app::{Ctx, TimerId};
use bytes::Bytes;

use crate::op::{frame, Reply};

/// Queue of encoded operation bodies a router pushes for a gateway.
pub type Inbox = Arc<Mutex<VecDeque<String>>>;
/// Queue of replies a gateway pushes for its router.
pub type Outbox = Arc<Mutex<VecDeque<Reply>>>;
/// The gateway's submission count (its next gseq), read by the audit
/// as the per-origin "messages submitted" figure.
pub type SubmitCount = Arc<Mutex<u64>>;

/// The shared-memory endpoints connecting one gateway to its router.
#[derive(Clone, Default)]
pub struct GatewayPort {
    /// Router → gateway: operation bodies to broadcast.
    pub inbox: Inbox,
    /// Gateway → router: replies from applied operations.
    pub outbox: Outbox,
    /// How many payloads the gateway has submitted (for auditing).
    pub submitted: SubmitCount,
    /// The gateway's actual member id, recorded at app start (`None`
    /// until then) — the audit keys submissions by member id.
    pub member: Arc<Mutex<Option<u32>>>,
}

impl GatewayPort {
    /// Fresh, empty endpoints.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues one body for the gateway to broadcast.
    pub fn push(&self, body: String) {
        self.inbox.lock().unwrap().push_back(body);
    }
}

/// Timer the gateway polls its inbox on.
pub const POLL_TIMER: TimerId = TimerId(0xFEED_0001);
/// Timer the gateway retries failed sends on.
pub const RETRY_TIMER: TimerId = TimerId(0xFEED_0002);
/// Backoff before re-sending bodies whose send failed, if no new view
/// arrives first.
const RETRY_AFTER: Duration = Duration::from_millis(500);

/// The embeddable gateway role. Apps that may act as a gateway hold an
/// `Option<Gateway>` and forward their callbacks here.
pub struct Gateway {
    port: GatewayPort,
    /// Next sequence number to assign (== payloads submitted so far).
    gseq: u64,
    /// Bodies submitted but not yet completed, in submission order
    /// (send completions are FIFO per sender).
    inflight: VecDeque<String>,
    /// Bodies whose send failed, awaiting re-submission.
    retry: Vec<String>,
    poll: Duration,
}

impl Gateway {
    /// A gateway serving `port`, polling its inbox every `poll`.
    pub fn new(port: GatewayPort, poll: Duration) -> Self {
        Gateway { port, gseq: 0, inflight: VecDeque::new(), retry: Vec::new(), poll }
    }

    /// Call from `GroupApp::on_start`.
    pub fn on_start(&mut self, ctx: &mut dyn Ctx) {
        *self.port.member.lock().unwrap() = Some(ctx.info().me.0);
        ctx.set_timer(POLL_TIMER, self.poll);
    }

    /// Call from `GroupApp::on_timer`; returns `true` if the timer was
    /// one of the gateway's.
    pub fn on_timer(&mut self, ctx: &mut dyn Ctx, timer: TimerId) -> bool {
        match timer {
            POLL_TIMER => {
                loop {
                    let body = self.port.inbox.lock().unwrap().pop_front();
                    match body {
                        Some(b) => self.submit(ctx, b),
                        None => break,
                    }
                }
                ctx.set_timer(POLL_TIMER, self.poll);
                true
            }
            RETRY_TIMER => {
                self.flush_retries(ctx);
                true
            }
            _ => false,
        }
    }

    /// Call for every `AppEvent::SendDone`.
    pub fn on_send_done(&mut self, ctx: &mut dyn Ctx, ok: bool) {
        let body = self.inflight.pop_front().expect("SendDone without an inflight send");
        if !ok {
            // The send may or may not have been ordered (ambiguity is
            // inherent); the body will be re-broadcast under a fresh
            // gseq and replicas apply it idempotently.
            self.retry.push(body);
            ctx.set_timer(RETRY_TIMER, RETRY_AFTER);
        }
    }

    /// Call when a `ViewInstalled` arrives: recovery finished, so
    /// failed bodies can go out immediately.
    pub fn on_view_installed(&mut self, ctx: &mut dyn Ctx) {
        if !self.retry.is_empty() {
            self.flush_retries(ctx);
        }
    }

    fn flush_retries(&mut self, ctx: &mut dyn Ctx) {
        for body in std::mem::take(&mut self.retry) {
            self.submit(ctx, body);
        }
    }

    fn submit(&mut self, ctx: &mut dyn Ctx, body: String) {
        let payload = frame(self.gseq, &body);
        self.gseq += 1;
        *self.port.submitted.lock().unwrap() = self.gseq;
        self.inflight.push_back(body);
        ctx.send(Bytes::from(payload));
    }

    /// Pushes a reply onto the outbox for the router.
    pub fn reply(&self, r: Reply) {
        self.port.outbox.lock().unwrap().push_back(r);
    }
}
