//! The replicated shard map: which group owns which slice of the
//! keyspace.
//!
//! Keys hash (FNV-1a, 64-bit) onto the ring `0..2^64`; the map is a
//! sorted list of half-open ranges, each owned by one data group. The
//! map itself is replicated state of a small *meta group* app
//! ([`crate::MetaApp`]): every change travels through the meta group's
//! total order as a [`MapCmd`], so all meta members apply the same
//! change sequence and the map has a single well-defined history.
//! Routers read the latest map from a [`MapBoard`] the meta members
//! publish into.

use std::sync::{Arc, Mutex};

/// Hash placing a key on the ring: FNV-1a 64-bit followed by a
/// SplitMix64-style finalizer. The finalizer matters — ranges
/// partition by the *top* bits, where bare FNV-1a barely avalanches
/// on short keys (every `"k0".."k99"` lands in the first quadrant
/// without it).
pub fn key_hash(key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// One slice of the ring: `[start, next.start)` (the last range wraps
/// to the top of the ring), owned by data group `group`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRange {
    /// Inclusive lower bound of the slice.
    pub start: u64,
    /// Wire id of the owning data group.
    pub group: u64,
    /// Set while a range move is in flight: the destination group.
    /// Ownership changes only at `CommitMove`.
    pub moving_to: Option<u64>,
}

/// The shard map: a full partition of the ring into owned ranges.
///
/// `epoch` increments on every applied [`MapCmd`]; routers use it to
/// detect staleness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    /// Monotone version counter, bumped once per applied command.
    pub epoch: u64,
    /// Sorted by `start`; `ranges[0].start == 0`; never empty.
    pub ranges: Vec<ShardRange>,
}

impl ShardMap {
    /// A map that splits the ring evenly across `groups` (in the given
    /// order). Epoch starts at 0.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty.
    pub fn uniform(groups: &[u64]) -> Self {
        assert!(!groups.is_empty(), "a shard map needs at least one group");
        let n = groups.len() as u64;
        let step = if n == 1 { 0 } else { u64::MAX / n + 1 };
        let ranges = groups
            .iter()
            .enumerate()
            .map(|(i, &g)| ShardRange { start: step.wrapping_mul(i as u64), group: g, moving_to: None })
            .collect();
        ShardMap { epoch: 0, ranges }
    }

    /// The boundaries an even split across `n` shards produces —
    /// `boundary(i, n)` is the `start` of the i-th initial range.
    pub fn uniform_boundary(i: usize, n: usize) -> u64 {
        let step = if n == 1 { 0u64 } else { u64::MAX / n as u64 + 1 };
        step.wrapping_mul(i as u64)
    }

    /// Index of the range containing hash `h`.
    pub fn range_index(&self, h: u64) -> usize {
        self.ranges.partition_point(|r| r.start <= h) - 1
    }

    /// The owning group for hash `h`.
    pub fn owner(&self, h: u64) -> u64 {
        self.ranges[self.range_index(h)].group
    }

    /// `(start, end)` of range `i`, with `end == 0` meaning "the top of
    /// the ring" (the conventions used by every range in this crate:
    /// ranges are half-open and an exclusive end of 0 wraps).
    pub fn bounds(&self, i: usize) -> (u64, u64) {
        let start = self.ranges[i].start;
        let end = self.ranges.get(i + 1).map_or(0, |r| r.start);
        (start, end)
    }

    /// The range starting exactly at `start`, if any.
    pub fn range_at(&self, start: u64) -> Option<&ShardRange> {
        self.ranges.iter().find(|r| r.start == start)
    }

    /// All `(start, end)` slices currently owned by `group`.
    pub fn ranges_of(&self, group: u64) -> Vec<(u64, u64)> {
        (0..self.ranges.len())
            .filter(|&i| self.ranges[i].group == group)
            .map(|i| self.bounds(i))
            .collect()
    }

    /// Applies one totally-ordered command. Every application bumps the
    /// epoch, including structural no-ops, so duplicated commands (a
    /// gateway retrying an ambiguous send) stay harmless.
    pub fn apply(&mut self, cmd: &MapCmd) {
        self.epoch += 1;
        match *cmd {
            MapCmd::Split { at } => {
                if at == 0 || self.range_at(at).is_some() {
                    return; // boundary already exists
                }
                let i = self.range_index(at);
                if self.ranges[i].moving_to.is_some() {
                    return; // never split a range mid-move
                }
                let group = self.ranges[i].group;
                self.ranges.insert(i + 1, ShardRange { start: at, group, moving_to: None });
            }
            MapCmd::BeginMove { start, to } => {
                if let Some(r) = self.ranges.iter_mut().find(|r| r.start == start) {
                    if r.group != to && r.moving_to.is_none() {
                        r.moving_to = Some(to);
                    }
                }
            }
            MapCmd::CommitMove { start } => {
                if let Some(r) = self.ranges.iter_mut().find(|r| r.start == start) {
                    if let Some(to) = r.moving_to.take() {
                        r.group = to;
                    }
                }
            }
            MapCmd::AbortMove { start } => {
                if let Some(r) = self.ranges.iter_mut().find(|r| r.start == start) {
                    r.moving_to = None;
                }
            }
            MapCmd::MergeIntoPrev { start } => {
                if let Some(i) = self.ranges.iter().position(|r| r.start == start) {
                    if i > 0
                        && self.ranges[i - 1].group == self.ranges[i].group
                        && self.ranges[i - 1].moving_to.is_none()
                        && self.ranges[i].moving_to.is_none()
                    {
                        self.ranges.remove(i);
                    }
                }
            }
        }
    }
}

/// A totally-ordered shard-map change. Encoded as a short text command
/// and broadcast through the meta group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapCmd {
    /// Introduce a boundary at `at` (the containing range splits in
    /// two, both halves keeping their owner).
    Split { at: u64 },
    /// Mark the range starting at `start` as moving to group `to`.
    BeginMove { start: u64, to: u64 },
    /// Transfer ownership of the moving range starting at `start`.
    CommitMove { start: u64 },
    /// Cancel an in-flight move.
    AbortMove { start: u64 },
    /// Remove the boundary at `start`, folding the range into its
    /// predecessor (legal only when both halves share an owner).
    MergeIntoPrev { start: u64 },
}

impl MapCmd {
    /// Wire encoding (pipe-separated, decimal).
    pub fn encode(&self) -> String {
        match *self {
            MapCmd::Split { at } => format!("S|{at}"),
            MapCmd::BeginMove { start, to } => format!("B|{start}|{to}"),
            MapCmd::CommitMove { start } => format!("C|{start}"),
            MapCmd::AbortMove { start } => format!("A|{start}"),
            MapCmd::MergeIntoPrev { start } => format!("M|{start}"),
        }
    }

    /// Parses [`MapCmd::encode`] output.
    pub fn decode(s: &str) -> Option<MapCmd> {
        let mut it = s.split('|');
        let tag = it.next()?;
        let a = it.next()?.parse().ok()?;
        let cmd = match tag {
            "S" => MapCmd::Split { at: a },
            "B" => MapCmd::BeginMove { start: a, to: it.next()?.parse().ok()? },
            "C" => MapCmd::CommitMove { start: a },
            "A" => MapCmd::AbortMove { start: a },
            "M" => MapCmd::MergeIntoPrev { start: a },
            _ => return None,
        };
        if it.next().is_some() {
            return None;
        }
        Some(cmd)
    }
}

/// Where meta members publish the map for routers to read. Each member
/// publishes after applying a command; the epoch guard keeps a slow
/// member from rolling the board backwards.
pub type MapBoard = Arc<Mutex<ShardMap>>;

/// Creates a board holding `map`.
pub fn new_board(map: ShardMap) -> MapBoard {
    Arc::new(Mutex::new(map))
}

/// Publishes `map` onto `board` if it is newer than what is there.
pub fn publish(board: &MapBoard, map: &ShardMap) {
    let mut b = board.lock().unwrap();
    if map.epoch > b.epoch {
        *b = map.clone();
    }
}

/// Does the half-open range `(start, end)` (end 0 = top) contain `h`?
pub fn range_contains(range: (u64, u64), h: u64) -> bool {
    h >= range.0 && (range.1 == 0 || h < range.1)
}

/// Is `inner` fully inside `outer` (both half-open, end 0 = top)?
pub fn range_covers(outer: (u64, u64), inner: (u64, u64)) -> bool {
    inner.0 >= outer.0
        && match (inner.1, outer.1) {
            (0, 0) => true,
            (0, _) => false,
            (_, 0) => true,
            (i, o) => i <= o,
        }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_ring() {
        let m = ShardMap::uniform(&[1, 2, 3, 4]);
        assert_eq!(m.ranges.len(), 4);
        assert_eq!(m.ranges[0].start, 0);
        assert_eq!(m.owner(0), 1);
        assert_eq!(m.owner(u64::MAX), 4);
        let q = u64::MAX / 4 + 1;
        assert_eq!(m.owner(q - 1), 1);
        assert_eq!(m.owner(q), 2);
        let single = ShardMap::uniform(&[9]);
        assert_eq!(single.owner(0), 9);
        assert_eq!(single.owner(u64::MAX), 9);
    }

    #[test]
    fn split_move_merge_round_trip() {
        let mut m = ShardMap::uniform(&[1, 2]);
        let half = u64::MAX / 2 + 1;
        let quarter = half / 2;
        m.apply(&MapCmd::Split { at: quarter });
        assert_eq!(m.ranges.len(), 3);
        assert_eq!(m.owner(quarter), 1);
        m.apply(&MapCmd::BeginMove { start: quarter, to: 2 });
        assert_eq!(m.range_at(quarter).unwrap().moving_to, Some(2));
        assert_eq!(m.owner(quarter), 1, "ownership holds until commit");
        m.apply(&MapCmd::CommitMove { start: quarter });
        assert_eq!(m.owner(quarter), 2);
        // Move it back and merge the boundary away.
        m.apply(&MapCmd::BeginMove { start: quarter, to: 1 });
        m.apply(&MapCmd::CommitMove { start: quarter });
        m.apply(&MapCmd::MergeIntoPrev { start: quarter });
        assert_eq!(m.ranges.len(), 2);
        assert_eq!(m.epoch, 6);
    }

    #[test]
    fn duplicated_commands_are_harmless() {
        let mut m = ShardMap::uniform(&[1, 2]);
        let at = 1234;
        m.apply(&MapCmd::Split { at });
        let snap = m.ranges.clone();
        m.apply(&MapCmd::Split { at });
        assert_eq!(m.ranges, snap);
        m.apply(&MapCmd::BeginMove { start: at, to: 2 });
        m.apply(&MapCmd::BeginMove { start: at, to: 2 });
        assert_eq!(m.range_at(at).unwrap().moving_to, Some(2));
        m.apply(&MapCmd::CommitMove { start: at });
        m.apply(&MapCmd::CommitMove { start: at });
        assert_eq!(m.owner(at), 2);
    }

    #[test]
    fn cmd_codec_round_trips() {
        for cmd in [
            MapCmd::Split { at: 7 },
            MapCmd::BeginMove { start: 0, to: 3 },
            MapCmd::CommitMove { start: u64::MAX },
            MapCmd::AbortMove { start: 12 },
            MapCmd::MergeIntoPrev { start: 99 },
        ] {
            assert_eq!(MapCmd::decode(&cmd.encode()), Some(cmd));
        }
        assert_eq!(MapCmd::decode("Z|1"), None);
        assert_eq!(MapCmd::decode("S|1|2"), None);
        assert_eq!(MapCmd::decode("S|x"), None);
    }

    #[test]
    fn board_never_regresses() {
        let board = new_board(ShardMap::uniform(&[1]));
        let mut newer = ShardMap::uniform(&[1]);
        newer.apply(&MapCmd::Split { at: 10 });
        publish(&board, &newer);
        assert_eq!(board.lock().unwrap().epoch, 1);
        let older = ShardMap::uniform(&[1]);
        publish(&board, &older);
        assert_eq!(board.lock().unwrap().epoch, 1, "stale publish ignored");
    }

    #[test]
    fn range_helpers() {
        assert!(range_contains((10, 20), 10));
        assert!(!range_contains((10, 20), 20));
        assert!(range_contains((10, 0), u64::MAX));
        assert!(range_covers((10, 0), (20, 0)));
        assert!(range_covers((10, 30), (10, 30)));
        assert!(!range_covers((10, 30), (10, 0)));
        assert!(!range_covers((10, 30), (5, 20)));
    }
}
