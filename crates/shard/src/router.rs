//! The client-side router: maps keys to owning groups, feeds gateway
//! inboxes, consumes replies, and retries on stale maps.
//!
//! The router is a plain state machine pumped by the cluster driver
//! (no threads of its own): `pump()` refreshes the cached map from the
//! [`MapBoard`], re-issues operations that were nacked in the previous
//! cycle, then drains every gateway outbox. A `WrongShard` nack is the
//! signal that the cached map went stale — the next pump re-routes the
//! operation under the refreshed map. A `Frozen`/`Locked` nack simply
//! retries until the blocking move or transaction finishes.
//!
//! Single-key operations are serialized per key (at most one in
//! flight; later ones queue), which makes the cluster-level audit
//! exact: the final replicated value of a key must equal the last
//! *acknowledged* write the router recorded for it — anything else is
//! a lost acked write. Cross-shard transactions claim all their keys
//! before issuing (all-or-queue, so two transactions can never
//! deadlock on each other's partial claims).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::gateway::GatewayPort;
use crate::map::{key_hash, MapBoard, ShardMap};
use crate::op::{NackReason, Reply, ShardOp};

/// Routing and retry counters.
#[derive(Debug, Default, Clone)]
pub struct RouterStats {
    /// Puts acknowledged by their owning group.
    pub puts_acked: u64,
    /// Gets served.
    pub gets_acked: u64,
    /// Cross-shard fence reads completed.
    pub fences_done: u64,
    /// Cross-shard transactions committed.
    pub txs_committed: u64,
    /// Operations re-issued after a nack or abort.
    pub retries: u64,
    /// `WrongShard` nacks (stale-map detections).
    pub wrong_shard: u64,
    /// `Frozen` nacks (operation raced an in-flight move).
    pub frozen: u64,
    /// `Locked` nacks/rejections (operation raced a transaction).
    pub locked: u64,
    /// Times the cached map was refreshed from the board.
    pub map_refreshes: u64,
    /// Replies for operations already completed (idempotent-retry
    /// duplicates; harmless).
    pub duplicate_replies: u64,
}

/// A finished operation, retrieved with [`Router::take`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Completion {
    /// The write is applied on the owning group.
    Put { key: String, value: String },
    /// The read executed.
    Get { key: String, value: Option<String> },
    /// Every involved group served its slice of the fence.
    Fence { values: Vec<(String, Option<String>)> },
    /// Freeze applied at the source; `entries` is the range snapshot.
    Frozen { entries: Vec<(String, String)> },
    /// Install applied at the destination.
    Installed,
    /// Retire applied at the source.
    Retired,
    /// The cross-shard transaction committed on every involved group.
    TxCommitted,
}

enum MoveKind {
    Freeze,
    Install,
    Retire,
}

enum TxPhase {
    Preparing,
    Committing,
    Aborting,
}

/// One group's fence result: each key read at that group's fence
/// point (`None` until the group's `FenceRead` reply arrives).
type FencePart = Option<Vec<(String, Option<String>)>>;

enum Pending {
    Put { key: String, value: String },
    Get { key: String },
    Fence { keys: Vec<String>, parts: BTreeMap<u64, FencePart> },
    Move { kind: MoveKind, group: u64, start: u64, end: u64, entries: Vec<(String, String)> },
    Tx { writes: Vec<(String, String)>, waits: BTreeMap<u64, bool>, phase: TxPhase },
}

/// See the module docs.
pub struct Router {
    board: MapBoard,
    map: ShardMap,
    ports: BTreeMap<u64, GatewayPort>,
    next_id: u64,
    pending: BTreeMap<u64, Pending>,
    completed: BTreeMap<u64, Completion>,
    /// Keys with an operation in flight.
    outstanding: BTreeSet<String>,
    /// Operations queued behind an outstanding key.
    waiting: BTreeMap<String, VecDeque<u64>>,
    /// Operations to re-issue on the next pump (nacked this cycle).
    deferred: BTreeSet<u64>,
    /// Last acknowledged write per key — the audit's ground truth.
    acked: BTreeMap<String, String>,
    stats: RouterStats,
}

impl Router {
    /// A router over the given gateway ports, reading maps from
    /// `board` (which must already hold the initial map).
    pub fn new(board: MapBoard, ports: BTreeMap<u64, GatewayPort>) -> Self {
        let map = board.lock().unwrap().clone();
        Router {
            board,
            map,
            ports,
            next_id: 1,
            pending: BTreeMap::new(),
            completed: BTreeMap::new(),
            outstanding: BTreeSet::new(),
            waiting: BTreeMap::new(),
            deferred: BTreeSet::new(),
            acked: BTreeMap::new(),
            stats: RouterStats::default(),
        }
    }

    /// Submits a write; returns its operation id.
    pub fn put(&mut self, key: &str, value: &str) -> u64 {
        let id = self.fresh_id();
        self.pending.insert(id, Pending::Put { key: key.to_string(), value: value.to_string() });
        self.enqueue_or_issue(id);
        id
    }

    /// Submits a read; returns its operation id.
    pub fn get(&mut self, key: &str) -> u64 {
        let id = self.fresh_id();
        self.pending.insert(id, Pending::Get { key: key.to_string() });
        self.enqueue_or_issue(id);
        id
    }

    /// Submits a cross-shard fence read over `keys`.
    pub fn fence(&mut self, keys: Vec<String>) -> u64 {
        assert!(!keys.is_empty());
        let id = self.fresh_id();
        self.pending.insert(id, Pending::Fence { keys, parts: BTreeMap::new() });
        self.enqueue_or_issue(id);
        id
    }

    /// Submits a cross-shard transactional write (2PC over the
    /// involved groups' gateways).
    pub fn cross_put(&mut self, writes: Vec<(String, String)>) -> u64 {
        assert!(!writes.is_empty());
        let id = self.fresh_id();
        self.pending
            .insert(id, Pending::Tx { writes, waits: BTreeMap::new(), phase: TxPhase::Preparing });
        self.enqueue_or_issue(id);
        id
    }

    /// Move step 1: freeze `[start, end)` at `group` (the controller's
    /// API; see [`crate::moves`]).
    pub fn freeze(&mut self, group: u64, start: u64, end: u64) -> u64 {
        self.submit_move(MoveKind::Freeze, group, start, end, Vec::new())
    }

    /// Move step 2: install `[start, end)` with `entries` at `group`.
    pub fn install(
        &mut self,
        group: u64,
        start: u64,
        end: u64,
        entries: Vec<(String, String)>,
    ) -> u64 {
        self.submit_move(MoveKind::Install, group, start, end, entries)
    }

    /// Move step 3: retire `[start, end)` from `group`.
    pub fn retire(&mut self, group: u64, start: u64, end: u64) -> u64 {
        self.submit_move(MoveKind::Retire, group, start, end, Vec::new())
    }

    fn submit_move(
        &mut self,
        kind: MoveKind,
        group: u64,
        start: u64,
        end: u64,
        entries: Vec<(String, String)>,
    ) -> u64 {
        let id = self.fresh_id();
        self.pending.insert(id, Pending::Move { kind, group, start, end, entries });
        self.enqueue_or_issue(id);
        id
    }

    /// One router cycle: refresh the map, re-issue nacked operations,
    /// drain every gateway outbox.
    pub fn pump(&mut self) {
        {
            let board = self.board.lock().unwrap();
            if board.epoch > self.map.epoch {
                self.map = board.clone();
                self.stats.map_refreshes += 1;
            }
        }
        for id in std::mem::take(&mut self.deferred) {
            if self.pending.contains_key(&id) {
                self.stats.retries += 1;
                self.issue(id);
            }
        }
        let groups: Vec<u64> = self.ports.keys().copied().collect();
        for g in groups {
            loop {
                let reply = self.ports[&g].outbox.lock().unwrap().pop_front();
                match reply {
                    Some(r) => self.handle(g, r),
                    None => break,
                }
            }
        }
    }

    /// Retrieves (and removes) a finished operation's result.
    pub fn take(&mut self, id: u64) -> Option<Completion> {
        self.completed.remove(&id)
    }

    /// Operations submitted but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is in flight.
    pub fn idle(&self) -> bool {
        self.pending.is_empty()
    }

    /// The router's current (possibly stale) map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Last acknowledged write per key: the ground truth for the
    /// zero-lost-acked-writes audit.
    pub fn acked_writes(&self) -> &BTreeMap<String, String> {
        &self.acked
    }

    /// Routing and retry counters.
    pub fn stats(&self) -> &RouterStats {
        &self.stats
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Keys an operation must hold exclusively before issuing.
    fn claim_keys(&self, id: u64) -> Vec<String> {
        match &self.pending[&id] {
            Pending::Put { key, .. } | Pending::Get { key } => vec![key.clone()],
            Pending::Tx { writes, .. } => writes.iter().map(|(k, _)| k.clone()).collect(),
            Pending::Fence { .. } | Pending::Move { .. } => Vec::new(),
        }
    }

    /// Claims the operation's keys and issues it, or queues it behind
    /// the first busy key (all-or-queue, so claims never deadlock).
    fn enqueue_or_issue(&mut self, id: u64) {
        let keys = self.claim_keys(id);
        if let Some(busy) = keys.iter().find(|k| self.outstanding.contains(*k)) {
            self.waiting.entry(busy.clone()).or_default().push_back(id);
            return;
        }
        for k in keys {
            self.outstanding.insert(k);
        }
        self.issue(id);
    }

    /// Releases a finished operation's keys and wakes the queued
    /// operations behind them. A woken operation may immediately
    /// re-queue on a different busy key (multi-key transactions), in
    /// which case the next waiter gets its chance — the loop runs
    /// until the key is claimed again or its queue drains.
    fn release(&mut self, id: u64) {
        let keys = self.claim_keys(id);
        for k in &keys {
            self.outstanding.remove(k);
        }
        for k in &keys {
            while !self.outstanding.contains(k) {
                let Some(next) = self.waiting.get_mut(k).and_then(|q| q.pop_front()) else {
                    break;
                };
                self.enqueue_or_issue(next);
            }
            if self.waiting.get(k).is_some_and(|q| q.is_empty()) {
                self.waiting.remove(k);
            }
        }
    }

    fn push(&mut self, group: u64, op: &ShardOp) {
        self.ports
            .get(&group)
            .unwrap_or_else(|| panic!("no gateway port for group {group}"))
            .push(op.encode());
    }

    /// (Re-)issues an operation under the current map. Safe to call
    /// again after a nack: replicas apply duplicates idempotently and
    /// the router ignores duplicate replies.
    fn issue(&mut self, id: u64) {
        match self.pending.get_mut(&id).expect("issue of unknown op") {
            Pending::Put { key, value } => {
                let (key, value) = (key.clone(), value.clone());
                let group = self.map.owner(key_hash(&key));
                self.push(group, &ShardOp::Put { id, key, value });
            }
            Pending::Get { key } => {
                let key = key.clone();
                let group = self.map.owner(key_hash(&key));
                self.push(group, &ShardOp::Get { id, key });
            }
            Pending::Fence { keys, parts } => {
                let mut by_group: BTreeMap<u64, Vec<String>> = BTreeMap::new();
                let map = &self.map;
                for k in keys.iter() {
                    by_group.entry(map.owner(key_hash(k))).or_default().push(k.clone());
                }
                *parts = by_group.keys().map(|&g| (g, None)).collect();
                for (g, keys) in by_group {
                    self.push(g, &ShardOp::Fence { id, keys });
                }
            }
            Pending::Move { kind, group, start, end, entries } => {
                let (group, start, end) = (*group, *start, *end);
                let op = match kind {
                    MoveKind::Freeze => ShardOp::Freeze { mv: id, start, end },
                    MoveKind::Install => {
                        ShardOp::Install { mv: id, start, end, entries: entries.clone() }
                    }
                    MoveKind::Retire => ShardOp::Retire { mv: id, start, end },
                };
                self.push(group, &op);
            }
            Pending::Tx { writes, waits, phase } => {
                // Prepare routes by the current map; Commit and Abort
                // must go to exactly the groups the prepare reached
                // (recorded in `waits`), never re-routed — a map
                // refresh mid-transaction must not strand locks.
                let ops: Vec<(u64, ShardOp)> = match phase {
                    TxPhase::Preparing => {
                        let mut by_group: BTreeMap<u64, Vec<(String, String)>> = BTreeMap::new();
                        let map = &self.map;
                        for (k, v) in writes.iter() {
                            by_group
                                .entry(map.owner(key_hash(k)))
                                .or_default()
                                .push((k.clone(), v.clone()));
                        }
                        *waits = by_group.keys().map(|&g| (g, false)).collect();
                        by_group
                            .into_iter()
                            .map(|(g, writes)| (g, ShardOp::Prepare { tx: id, writes }))
                            .collect()
                    }
                    TxPhase::Committing => {
                        waits.values_mut().for_each(|d| *d = false);
                        waits.keys().map(|&g| (g, ShardOp::Commit { tx: id })).collect()
                    }
                    TxPhase::Aborting => {
                        waits.values_mut().for_each(|d| *d = false);
                        waits.keys().map(|&g| (g, ShardOp::Abort { tx: id })).collect()
                    }
                };
                for (g, op) in ops {
                    self.push(g, &op);
                }
            }
        }
    }

    fn complete(&mut self, id: u64, result: Completion) {
        self.release(id); // reads the pending entry — must precede removal
        self.pending.remove(&id);
        self.completed.insert(id, result);
    }

    fn note_nack(&mut self, why: NackReason) {
        match why {
            NackReason::WrongShard => self.stats.wrong_shard += 1,
            NackReason::Frozen => self.stats.frozen += 1,
            NackReason::Locked => self.stats.locked += 1,
        }
    }

    fn handle(&mut self, from_group: u64, reply: Reply) {
        match reply {
            Reply::Acked { id, value } => match self.pending.get(&id) {
                Some(Pending::Put { key, value: v }) => {
                    let (key, v) = (key.clone(), v.clone());
                    self.acked.insert(key.clone(), v.clone());
                    self.stats.puts_acked += 1;
                    self.complete(id, Completion::Put { key, value: v });
                }
                Some(Pending::Get { key }) => {
                    let key = key.clone();
                    self.stats.gets_acked += 1;
                    self.complete(id, Completion::Get { key, value });
                }
                _ => self.stats.duplicate_replies += 1,
            },
            Reply::Nacked { id, why } => {
                self.note_nack(why);
                if self.pending.contains_key(&id) {
                    self.deferred.insert(id);
                } else {
                    self.stats.duplicate_replies += 1;
                }
            }
            Reply::FenceRead { id, values } => {
                let Some(Pending::Fence { keys, parts }) = self.pending.get_mut(&id) else {
                    self.stats.duplicate_replies += 1;
                    return;
                };
                match parts.get_mut(&from_group) {
                    Some(slot) => {
                        if slot.replace(values).is_some() {
                            self.stats.duplicate_replies += 1;
                        }
                    }
                    None => {
                        self.stats.duplicate_replies += 1;
                        return;
                    }
                }
                if parts.values().all(Option::is_some) {
                    let mut merged: BTreeMap<String, Option<String>> = BTreeMap::new();
                    for part in parts.values().flatten() {
                        for (k, v) in part {
                            merged.insert(k.clone(), v.clone());
                        }
                    }
                    let values: Vec<(String, Option<String>)> = keys
                        .iter()
                        .map(|k| (k.clone(), merged.get(k).cloned().flatten()))
                        .collect();
                    self.stats.fences_done += 1;
                    self.complete(id, Completion::Fence { values });
                }
            }
            Reply::Frozen { mv, entries } => match self.pending.get(&mv) {
                Some(Pending::Move { kind: MoveKind::Freeze, .. }) => {
                    self.complete(mv, Completion::Frozen { entries });
                }
                _ => self.stats.duplicate_replies += 1,
            },
            Reply::Installed { mv } => match self.pending.get(&mv) {
                Some(Pending::Move { kind: MoveKind::Install, .. }) => {
                    self.complete(mv, Completion::Installed);
                }
                _ => self.stats.duplicate_replies += 1,
            },
            Reply::Retired { mv } => match self.pending.get(&mv) {
                Some(Pending::Move { kind: MoveKind::Retire, .. }) => {
                    self.complete(mv, Completion::Retired);
                }
                _ => self.stats.duplicate_replies += 1,
            },
            Reply::TxPrepared { tx } => {
                let Some(Pending::Tx { waits, phase: TxPhase::Preparing, .. }) =
                    self.pending.get_mut(&tx)
                else {
                    self.stats.duplicate_replies += 1;
                    return;
                };
                if let Some(done) = waits.get_mut(&from_group) {
                    *done = true;
                }
                if waits.values().all(|&d| d) {
                    let Some(Pending::Tx { phase, .. }) = self.pending.get_mut(&tx) else {
                        unreachable!()
                    };
                    *phase = TxPhase::Committing;
                    self.issue(tx);
                }
            }
            Reply::TxRejected { tx, why } => {
                self.note_nack(why);
                let Some(Pending::Tx { phase, .. }) = self.pending.get_mut(&tx) else {
                    self.stats.duplicate_replies += 1;
                    return;
                };
                if matches!(phase, TxPhase::Preparing) {
                    // Roll back whatever did prepare, then retry the
                    // whole transaction under a refreshed map.
                    *phase = TxPhase::Aborting;
                    self.issue(tx);
                }
            }
            Reply::TxCommitted { tx } => {
                let Some(Pending::Tx { waits, phase: TxPhase::Committing, .. }) =
                    self.pending.get_mut(&tx)
                else {
                    self.stats.duplicate_replies += 1;
                    return;
                };
                if let Some(done) = waits.get_mut(&from_group) {
                    *done = true;
                }
                if waits.values().all(|&d| d) {
                    let Some(Pending::Tx { writes, .. }) = self.pending.get(&tx) else {
                        unreachable!()
                    };
                    for (k, v) in writes.clone() {
                        self.acked.insert(k, v);
                    }
                    self.stats.txs_committed += 1;
                    self.complete(tx, Completion::TxCommitted);
                }
            }
            Reply::TxAborted { tx } => {
                let Some(Pending::Tx { waits, phase: TxPhase::Aborting, .. }) =
                    self.pending.get_mut(&tx)
                else {
                    self.stats.duplicate_replies += 1;
                    return;
                };
                if let Some(done) = waits.get_mut(&from_group) {
                    *done = true;
                }
                if waits.values().all(|&d| d) {
                    let Some(Pending::Tx { phase, .. }) = self.pending.get_mut(&tx) else {
                        unreachable!()
                    };
                    *phase = TxPhase::Preparing;
                    self.deferred.insert(tx);
                }
            }
        }
    }
}
