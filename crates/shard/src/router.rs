//! The client-side router: maps keys to owning groups, feeds gateway
//! inboxes, consumes replies, and retries on stale maps.
//!
//! The router is a plain state machine pumped by the cluster driver
//! (no threads of its own): `pump()` refreshes the cached map from the
//! [`MapBoard`], re-issues operations that were nacked in the previous
//! cycle, then drains every gateway outbox. A `WrongShard` nack is the
//! signal that the cached map went stale — the next pump re-routes the
//! operation under the refreshed map. A `Frozen`/`Locked` nack simply
//! retries until the blocking move or transaction finishes.
//!
//! Single-key operations are serialized per key (at most one in
//! flight; later ones queue), which makes the cluster-level audit
//! exact: the final replicated value of a key must equal the last
//! *acknowledged* write the router recorded for it — anything else is
//! a lost acked write. Cross-shard transactions claim all their keys
//! before issuing (all-or-queue, so two transactions can never
//! deadlock on each other's partial claims).
//!
//! Fences and transactions re-run from scratch on any setback, and
//! every run carries an *attempt* number echoed in replies: a
//! straggling reply from a superseded attempt is discarded rather
//! than merged into the current one (see [`crate::op`]).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::gateway::GatewayPort;
use crate::map::{key_hash, MapBoard, ShardMap};
use crate::op::{NackReason, Reply, ShardOp};

/// Routing and retry counters.
#[derive(Debug, Default, Clone)]
pub struct RouterStats {
    /// Puts acknowledged by their owning group.
    pub puts_acked: u64,
    /// Gets served.
    pub gets_acked: u64,
    /// Cross-shard fence reads completed.
    pub fences_done: u64,
    /// Cross-shard transactions committed.
    pub txs_committed: u64,
    /// Operations re-issued after a nack or abort.
    pub retries: u64,
    /// `WrongShard` nacks (stale-map detections).
    pub wrong_shard: u64,
    /// `Frozen` nacks (operation raced an in-flight move).
    pub frozen: u64,
    /// `Locked` nacks/rejections (operation raced a transaction).
    pub locked: u64,
    /// Times the cached map was refreshed from the board.
    pub map_refreshes: u64,
    /// Replies for operations already completed (idempotent-retry
    /// duplicates; harmless).
    pub duplicate_replies: u64,
}

/// A finished operation, retrieved with [`Router::take`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Completion {
    /// The write is applied on the owning group.
    Put { key: String, value: String },
    /// The read executed.
    Get { key: String, value: Option<String> },
    /// Every involved group served its slice of the fence.
    Fence { values: Vec<(String, Option<String>)> },
    /// Freeze applied at the source; `entries` is the range snapshot.
    Frozen { entries: Vec<(String, String)> },
    /// Install applied at the destination.
    Installed,
    /// Retire applied at the source.
    Retired,
    /// The cross-shard transaction committed on every involved group.
    TxCommitted,
}

enum MoveKind {
    Freeze,
    Install,
    Retire,
}

enum TxPhase {
    Preparing,
    Committing,
    Aborting,
}

/// One group's fence result: each key read at that group's fence
/// point (`None` until the group's `FenceRead` reply arrives).
type FencePart = Option<Vec<(String, Option<String>)>>;

enum Pending {
    Put { key: String, value: String },
    Get { key: String },
    /// `attempt` is bumped on every (re-)issue; replies echo it, so
    /// stragglers from a superseded attempt are discarded instead of
    /// filling a slot of the current one. `owners` records each key's
    /// owning group at issue time — if any differs at assembly time,
    /// ownership moved mid-fence and the whole fence re-runs
    /// (DESIGN.md §11.4).
    Fence {
        keys: Vec<String>,
        attempt: u64,
        owners: BTreeMap<String, u64>,
        parts: BTreeMap<u64, FencePart>,
    },
    Move { kind: MoveKind, group: u64, start: u64, end: u64, entries: Vec<(String, String)> },
    /// `attempt` is bumped on each fresh prepare round; replicas
    /// resolve (commit/abort) per attempt and the router drops replies
    /// from superseded attempts.
    Tx {
        writes: Vec<(String, String)>,
        attempt: u64,
        waits: BTreeMap<u64, bool>,
        phase: TxPhase,
    },
}

/// See the module docs.
pub struct Router {
    board: MapBoard,
    map: ShardMap,
    ports: BTreeMap<u64, GatewayPort>,
    next_id: u64,
    pending: BTreeMap<u64, Pending>,
    completed: BTreeMap<u64, Completion>,
    /// Keys with an operation in flight.
    outstanding: BTreeSet<String>,
    /// Operations queued behind an outstanding key.
    waiting: BTreeMap<String, VecDeque<u64>>,
    /// Operations to re-issue on the next pump (nacked this cycle).
    deferred: BTreeSet<u64>,
    /// Last acknowledged write per key — the audit's ground truth.
    acked: BTreeMap<String, String>,
    stats: RouterStats,
}

impl Router {
    /// A router over the given gateway ports, reading maps from
    /// `board` (which must already hold the initial map).
    pub fn new(board: MapBoard, ports: BTreeMap<u64, GatewayPort>) -> Self {
        let map = board.lock().unwrap().clone();
        Router {
            board,
            map,
            ports,
            next_id: 1,
            pending: BTreeMap::new(),
            completed: BTreeMap::new(),
            outstanding: BTreeSet::new(),
            waiting: BTreeMap::new(),
            deferred: BTreeSet::new(),
            acked: BTreeMap::new(),
            stats: RouterStats::default(),
        }
    }

    /// Submits a write; returns its operation id.
    pub fn put(&mut self, key: &str, value: &str) -> u64 {
        let id = self.fresh_id();
        self.pending.insert(id, Pending::Put { key: key.to_string(), value: value.to_string() });
        self.enqueue_or_issue(id);
        id
    }

    /// Submits a read; returns its operation id.
    pub fn get(&mut self, key: &str) -> u64 {
        let id = self.fresh_id();
        self.pending.insert(id, Pending::Get { key: key.to_string() });
        self.enqueue_or_issue(id);
        id
    }

    /// Submits a cross-shard fence read over `keys`.
    pub fn fence(&mut self, keys: Vec<String>) -> u64 {
        assert!(!keys.is_empty());
        let id = self.fresh_id();
        self.pending.insert(
            id,
            Pending::Fence {
                keys,
                attempt: 0,
                owners: BTreeMap::new(),
                parts: BTreeMap::new(),
            },
        );
        self.enqueue_or_issue(id);
        id
    }

    /// Submits a cross-shard transactional write (2PC over the
    /// involved groups' gateways).
    pub fn cross_put(&mut self, writes: Vec<(String, String)>) -> u64 {
        assert!(!writes.is_empty());
        let id = self.fresh_id();
        self.pending.insert(
            id,
            Pending::Tx { writes, attempt: 0, waits: BTreeMap::new(), phase: TxPhase::Preparing },
        );
        self.enqueue_or_issue(id);
        id
    }

    /// Move step 1: freeze `[start, end)` at `group` (the controller's
    /// API; see [`crate::moves`]).
    pub fn freeze(&mut self, group: u64, start: u64, end: u64) -> u64 {
        self.submit_move(MoveKind::Freeze, group, start, end, Vec::new())
    }

    /// Move step 2: install `[start, end)` with `entries` at `group`.
    pub fn install(
        &mut self,
        group: u64,
        start: u64,
        end: u64,
        entries: Vec<(String, String)>,
    ) -> u64 {
        self.submit_move(MoveKind::Install, group, start, end, entries)
    }

    /// Move step 3: retire `[start, end)` from `group`.
    pub fn retire(&mut self, group: u64, start: u64, end: u64) -> u64 {
        self.submit_move(MoveKind::Retire, group, start, end, Vec::new())
    }

    fn submit_move(
        &mut self,
        kind: MoveKind,
        group: u64,
        start: u64,
        end: u64,
        entries: Vec<(String, String)>,
    ) -> u64 {
        let id = self.fresh_id();
        self.pending.insert(id, Pending::Move { kind, group, start, end, entries });
        self.enqueue_or_issue(id);
        id
    }

    /// One router cycle: refresh the map, re-issue nacked operations,
    /// drain every gateway outbox.
    pub fn pump(&mut self) {
        {
            let board = self.board.lock().unwrap();
            if board.epoch > self.map.epoch {
                self.map = board.clone();
                self.stats.map_refreshes += 1;
            }
        }
        for id in std::mem::take(&mut self.deferred) {
            if self.pending.contains_key(&id) {
                self.stats.retries += 1;
                self.issue(id);
            }
        }
        let groups: Vec<u64> = self.ports.keys().copied().collect();
        for g in groups {
            loop {
                let reply = self.ports[&g].outbox.lock().unwrap().pop_front();
                match reply {
                    Some(r) => self.handle(g, r),
                    None => break,
                }
            }
        }
    }

    /// Retrieves (and removes) a finished operation's result.
    pub fn take(&mut self, id: u64) -> Option<Completion> {
        self.completed.remove(&id)
    }

    /// Operations submitted but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is in flight.
    pub fn idle(&self) -> bool {
        self.pending.is_empty()
    }

    /// The router's current (possibly stale) map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Last acknowledged write per key: the ground truth for the
    /// zero-lost-acked-writes audit.
    pub fn acked_writes(&self) -> &BTreeMap<String, String> {
        &self.acked
    }

    /// Routing and retry counters.
    pub fn stats(&self) -> &RouterStats {
        &self.stats
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Keys an operation must hold exclusively before issuing.
    fn claim_keys(&self, id: u64) -> Vec<String> {
        match &self.pending[&id] {
            Pending::Put { key, .. } | Pending::Get { key } => vec![key.clone()],
            Pending::Tx { writes, .. } => writes.iter().map(|(k, _)| k.clone()).collect(),
            Pending::Fence { .. } | Pending::Move { .. } => Vec::new(),
        }
    }

    /// Claims the operation's keys and issues it, or queues it behind
    /// the first busy key (all-or-queue, so claims never deadlock).
    fn enqueue_or_issue(&mut self, id: u64) {
        let keys = self.claim_keys(id);
        if let Some(busy) = keys.iter().find(|k| self.outstanding.contains(*k)) {
            self.waiting.entry(busy.clone()).or_default().push_back(id);
            return;
        }
        for k in keys {
            self.outstanding.insert(k);
        }
        self.issue(id);
    }

    /// Releases a finished operation's keys and wakes the queued
    /// operations behind them. A woken operation may immediately
    /// re-queue on a different busy key (multi-key transactions), in
    /// which case the next waiter gets its chance — the loop runs
    /// until the key is claimed again or its queue drains.
    fn release(&mut self, id: u64) {
        let keys = self.claim_keys(id);
        for k in &keys {
            self.outstanding.remove(k);
        }
        for k in &keys {
            while !self.outstanding.contains(k) {
                let Some(next) = self.waiting.get_mut(k).and_then(|q| q.pop_front()) else {
                    break;
                };
                self.enqueue_or_issue(next);
            }
            if self.waiting.get(k).is_some_and(|q| q.is_empty()) {
                self.waiting.remove(k);
            }
        }
    }

    fn push(&mut self, group: u64, op: &ShardOp) {
        self.ports
            .get(&group)
            .unwrap_or_else(|| panic!("no gateway port for group {group}"))
            .push(op.encode());
    }

    /// (Re-)issues an operation under the current map. Safe to call
    /// again after a nack: replicas apply duplicates idempotently and
    /// the router ignores duplicate replies.
    fn issue(&mut self, id: u64) {
        match self.pending.get_mut(&id).expect("issue of unknown op") {
            Pending::Put { key, value } => {
                let (key, value) = (key.clone(), value.clone());
                let group = self.map.owner(key_hash(&key));
                self.push(group, &ShardOp::Put { id, key, value });
            }
            Pending::Get { key } => {
                let key = key.clone();
                let group = self.map.owner(key_hash(&key));
                self.push(group, &ShardOp::Get { id, key });
            }
            Pending::Fence { keys, attempt, owners, parts } => {
                *attempt += 1;
                let attempt = *attempt;
                let mut by_group: BTreeMap<u64, Vec<String>> = BTreeMap::new();
                let map = &self.map;
                owners.clear();
                for k in keys.iter() {
                    let g = map.owner(key_hash(k));
                    owners.insert(k.clone(), g);
                    by_group.entry(g).or_default().push(k.clone());
                }
                *parts = by_group.keys().map(|&g| (g, None)).collect();
                for (g, keys) in by_group {
                    self.push(g, &ShardOp::Fence { id, attempt, keys });
                }
            }
            Pending::Move { kind, group, start, end, entries } => {
                let (group, start, end) = (*group, *start, *end);
                let op = match kind {
                    MoveKind::Freeze => ShardOp::Freeze { mv: id, start, end },
                    MoveKind::Install => {
                        ShardOp::Install { mv: id, start, end, entries: entries.clone() }
                    }
                    MoveKind::Retire => ShardOp::Retire { mv: id, start, end },
                };
                self.push(group, &op);
            }
            Pending::Tx { writes, attempt, waits, phase } => {
                // Prepare routes by the current map; Commit and Abort
                // must go to exactly the groups the prepare reached
                // (recorded in `waits`), never re-routed — a map
                // refresh mid-transaction must not strand locks.
                let ops: Vec<(u64, ShardOp)> = match phase {
                    TxPhase::Preparing => {
                        *attempt += 1;
                        let attempt = *attempt;
                        let mut by_group: BTreeMap<u64, Vec<(String, String)>> = BTreeMap::new();
                        let map = &self.map;
                        for (k, v) in writes.iter() {
                            by_group
                                .entry(map.owner(key_hash(k)))
                                .or_default()
                                .push((k.clone(), v.clone()));
                        }
                        *waits = by_group.keys().map(|&g| (g, false)).collect();
                        by_group
                            .into_iter()
                            .map(|(g, writes)| (g, ShardOp::Prepare { tx: id, attempt, writes }))
                            .collect()
                    }
                    TxPhase::Committing => {
                        let attempt = *attempt;
                        waits.values_mut().for_each(|d| *d = false);
                        waits.keys().map(|&g| (g, ShardOp::Commit { tx: id, attempt })).collect()
                    }
                    TxPhase::Aborting => {
                        let attempt = *attempt;
                        waits.values_mut().for_each(|d| *d = false);
                        waits.keys().map(|&g| (g, ShardOp::Abort { tx: id, attempt })).collect()
                    }
                };
                for (g, op) in ops {
                    self.push(g, &op);
                }
            }
        }
    }

    fn complete(&mut self, id: u64, result: Completion) {
        self.release(id); // reads the pending entry — must precede removal
        self.pending.remove(&id);
        self.completed.insert(id, result);
    }

    fn note_nack(&mut self, why: NackReason) {
        match why {
            NackReason::WrongShard => self.stats.wrong_shard += 1,
            NackReason::Frozen => self.stats.frozen += 1,
            NackReason::Locked => self.stats.locked += 1,
        }
    }

    fn handle(&mut self, from_group: u64, reply: Reply) {
        match reply {
            Reply::Acked { id, value } => match self.pending.get(&id) {
                Some(Pending::Put { key, value: v }) => {
                    let (key, v) = (key.clone(), v.clone());
                    self.acked.insert(key.clone(), v.clone());
                    self.stats.puts_acked += 1;
                    self.complete(id, Completion::Put { key, value: v });
                }
                Some(Pending::Get { key }) => {
                    let key = key.clone();
                    self.stats.gets_acked += 1;
                    self.complete(id, Completion::Get { key, value });
                }
                _ => self.stats.duplicate_replies += 1,
            },
            Reply::Nacked { id, why } => {
                self.note_nack(why);
                if self.pending.contains_key(&id) {
                    self.deferred.insert(id);
                } else {
                    self.stats.duplicate_replies += 1;
                }
            }
            Reply::FenceRead { id, attempt, values } => {
                let Some(Pending::Fence { keys, attempt: cur, owners, parts }) =
                    self.pending.get_mut(&id)
                else {
                    self.stats.duplicate_replies += 1;
                    return;
                };
                if attempt != *cur {
                    // Straggler from a superseded attempt (it was
                    // re-issued after a nack) — mixing it in would
                    // assemble a cross-attempt, pre-move snapshot.
                    self.stats.duplicate_replies += 1;
                    return;
                }
                match parts.get_mut(&from_group) {
                    Some(slot) => {
                        if slot.replace(values).is_some() {
                            self.stats.duplicate_replies += 1;
                        }
                    }
                    None => {
                        self.stats.duplicate_replies += 1;
                        return;
                    }
                }
                if parts.values().all(Option::is_some) {
                    // Assembly-time check (DESIGN.md §11.4): if any
                    // involved key's owner differs from the owner the
                    // fence was issued against, ownership moved
                    // between the first and last reply — the combined
                    // snapshot spans a move, so the whole fence
                    // re-runs under the refreshed map.
                    if keys.iter().any(|k| self.map.owner(key_hash(k)) != owners[k]) {
                        self.deferred.insert(id);
                        return;
                    }
                    let mut merged: BTreeMap<String, Option<String>> = BTreeMap::new();
                    for part in parts.values().flatten() {
                        for (k, v) in part {
                            merged.insert(k.clone(), v.clone());
                        }
                    }
                    let values: Vec<(String, Option<String>)> = keys
                        .iter()
                        .map(|k| (k.clone(), merged.get(k).cloned().flatten()))
                        .collect();
                    self.stats.fences_done += 1;
                    self.complete(id, Completion::Fence { values });
                }
            }
            Reply::Frozen { mv, entries } => match self.pending.get(&mv) {
                Some(Pending::Move { kind: MoveKind::Freeze, .. }) => {
                    self.complete(mv, Completion::Frozen { entries });
                }
                _ => self.stats.duplicate_replies += 1,
            },
            Reply::Installed { mv } => match self.pending.get(&mv) {
                Some(Pending::Move { kind: MoveKind::Install, .. }) => {
                    self.complete(mv, Completion::Installed);
                }
                _ => self.stats.duplicate_replies += 1,
            },
            Reply::Retired { mv } => match self.pending.get(&mv) {
                Some(Pending::Move { kind: MoveKind::Retire, .. }) => {
                    self.complete(mv, Completion::Retired);
                }
                _ => self.stats.duplicate_replies += 1,
            },
            Reply::TxPrepared { tx, attempt } => {
                let Some(Pending::Tx {
                    attempt: cur, waits, phase: TxPhase::Preparing, ..
                }) = self.pending.get_mut(&tx)
                else {
                    self.stats.duplicate_replies += 1;
                    return;
                };
                if attempt != *cur {
                    self.stats.duplicate_replies += 1;
                    return;
                }
                if let Some(done) = waits.get_mut(&from_group) {
                    *done = true;
                }
                if waits.values().all(|&d| d) {
                    let Some(Pending::Tx { phase, .. }) = self.pending.get_mut(&tx) else {
                        unreachable!()
                    };
                    *phase = TxPhase::Committing;
                    self.issue(tx);
                }
            }
            Reply::TxRejected { tx, attempt, why } => {
                self.note_nack(why);
                let Some(Pending::Tx { attempt: cur, phase, .. }) = self.pending.get_mut(&tx)
                else {
                    self.stats.duplicate_replies += 1;
                    return;
                };
                if attempt != *cur {
                    self.stats.duplicate_replies += 1;
                    return;
                }
                match phase {
                    // Preparing: some group refused to lock. Committing:
                    // a replica refused to apply (its staged range went
                    // frozen or unowned). Either way, roll back whatever
                    // did prepare and retry the whole transaction under
                    // a refreshed map and a fresh attempt.
                    TxPhase::Preparing | TxPhase::Committing => {
                        *phase = TxPhase::Aborting;
                        self.issue(tx);
                    }
                    TxPhase::Aborting => {}
                }
            }
            Reply::TxCommitted { tx, attempt } => {
                let Some(Pending::Tx {
                    attempt: cur, waits, phase: TxPhase::Committing, ..
                }) = self.pending.get_mut(&tx)
                else {
                    self.stats.duplicate_replies += 1;
                    return;
                };
                if attempt != *cur {
                    self.stats.duplicate_replies += 1;
                    return;
                }
                if let Some(done) = waits.get_mut(&from_group) {
                    *done = true;
                }
                if waits.values().all(|&d| d) {
                    let Some(Pending::Tx { writes, .. }) = self.pending.get(&tx) else {
                        unreachable!()
                    };
                    for (k, v) in writes.clone() {
                        self.acked.insert(k, v);
                    }
                    self.stats.txs_committed += 1;
                    self.complete(tx, Completion::TxCommitted);
                }
            }
            Reply::TxAborted { tx, attempt } => {
                let Some(Pending::Tx {
                    attempt: cur, waits, phase: TxPhase::Aborting, ..
                }) = self.pending.get_mut(&tx)
                else {
                    self.stats.duplicate_replies += 1;
                    return;
                };
                if attempt != *cur {
                    self.stats.duplicate_replies += 1;
                    return;
                }
                if let Some(done) = waits.get_mut(&from_group) {
                    *done = true;
                }
                if waits.values().all(|&d| d) {
                    let Some(Pending::Tx { phase, .. }) = self.pending.get_mut(&tx) else {
                        unreachable!()
                    };
                    *phase = TxPhase::Preparing;
                    self.deferred.insert(tx);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::map::{new_board, publish, MapCmd};

    use super::*;

    /// A two-group router over bare ports — the tests below play the
    /// replica side by hand, which is the only way to inject the
    /// stale/straggler replies a live cluster produces rarely.
    fn setup() -> (Router, GatewayPort, GatewayPort, crate::map::MapBoard) {
        let map = crate::map::ShardMap::uniform(&[1, 2]);
        let board = new_board(map);
        let (p1, p2) = (GatewayPort::new(), GatewayPort::new());
        let ports = BTreeMap::from([(1, p1.clone()), (2, p2.clone())]);
        (Router::new(board.clone(), ports), p1, p2, board)
    }

    /// A key owned by `group` under `map`.
    fn key_on(map: &ShardMap, group: u64) -> String {
        (0..)
            .map(|i| format!("key{i}"))
            .find(|k| map.owner(key_hash(k)) == group)
            .unwrap()
    }

    fn sent_ops(port: &GatewayPort) -> Vec<ShardOp> {
        port.inbox.lock().unwrap().drain(..).map(|b| ShardOp::decode(&b).unwrap()).collect()
    }

    fn reply(port: &GatewayPort, r: Reply) {
        port.outbox.lock().unwrap().push_back(r);
    }

    fn fence_read(key: &str, value: &str, attempt: u64, id: u64) -> Reply {
        Reply::FenceRead {
            id,
            attempt,
            values: vec![(key.to_string(), Some(value.to_string()))],
        }
    }

    #[test]
    fn stale_fence_reply_cannot_complete_a_fresh_attempt() {
        let (mut r, p1, p2, _board) = setup();
        let map = r.map().clone();
        let (a, b) = (key_on(&map, 1), key_on(&map, 2));
        let id = r.fence(vec![a.clone(), b.clone()]);
        assert!(matches!(sent_ops(&p1)[..], [ShardOp::Fence { attempt: 1, .. }]));
        assert!(matches!(sent_ops(&p2)[..], [ShardOp::Fence { attempt: 1, .. }]));
        // Group 1 answers; group 2 nacks (mid-move), so the fence
        // re-runs as attempt 2.
        reply(&p1, fence_read(&a, "old-a", 1, id));
        reply(&p2, Reply::Nacked { id, why: NackReason::Frozen });
        r.pump();
        r.pump(); // re-issue of the deferred fence
        assert!(matches!(sent_ops(&p1)[..], [ShardOp::Fence { attempt: 2, .. }]));
        assert!(matches!(sent_ops(&p2)[..], [ShardOp::Fence { attempt: 2, .. }]));
        // A straggler from attempt 1 (the nacked broadcast was also
        // applied — ambiguous sends do that) must not fill attempt 2's
        // slot with a pre-move snapshot.
        reply(&p2, fence_read(&b, "stale-b", 1, id));
        r.pump();
        assert!(r.take(id).is_none(), "fence completed off a stale straggler");
        reply(&p1, fence_read(&a, "new-a", 2, id));
        reply(&p2, fence_read(&b, "new-b", 2, id));
        r.pump();
        let Some(Completion::Fence { values }) = r.take(id) else {
            panic!("fence did not complete");
        };
        assert_eq!(
            values,
            vec![
                (a, Some("new-a".to_string())),
                (b, Some("new-b".to_string())),
            ]
        );
        assert!(r.stats().duplicate_replies > 0);
    }

    #[test]
    fn fence_reruns_when_ownership_moves_between_replies() {
        let (mut r, p1, p2, board) = setup();
        let map = r.map().clone();
        let (a, b) = (key_on(&map, 1), key_on(&map, 2));
        let id = r.fence(vec![a.clone(), b.clone()]);
        sent_ops(&p1);
        sent_ops(&p2);
        reply(&p1, fence_read(&a, "pre-move", 1, id));
        // Between the two replies, a's whole range moves to group 2.
        let start = map.ranges[map.range_index(key_hash(&a))].start;
        let mut moved = board.lock().unwrap().clone();
        moved.apply(&MapCmd::BeginMove { start, to: 2 });
        moved.apply(&MapCmd::CommitMove { start });
        publish(&board, &moved);
        reply(&p2, fence_read(&b, "post-move", 1, id));
        r.pump();
        assert!(r.take(id).is_none(), "fence merged replies spanning a move");
        // The re-run routes both keys to the new owner and completes.
        r.pump();
        assert!(sent_ops(&p1).is_empty(), "group 1 no longer owns any fence key");
        match &sent_ops(&p2)[..] {
            [ShardOp::Fence { attempt: 2, keys, .. }] => assert_eq!(keys.len(), 2),
            other => panic!("expected one combined fence, got {other:?}"),
        }
        reply(
            &p2,
            Reply::FenceRead {
                id,
                attempt: 2,
                values: vec![(a.clone(), Some("a2".into())), (b.clone(), Some("b2".into()))],
            },
        );
        r.pump();
        assert!(matches!(r.take(id), Some(Completion::Fence { .. })));
    }

    #[test]
    fn commit_rejection_aborts_and_reruns_the_transaction() {
        let (mut r, p1, p2, _board) = setup();
        let map = r.map().clone();
        let (a, b) = (key_on(&map, 1), key_on(&map, 2));
        let tx = r.cross_put(vec![(a.clone(), "va".into()), (b.clone(), "vb".into())]);
        assert!(matches!(sent_ops(&p1)[..], [ShardOp::Prepare { attempt: 1, .. }]));
        assert!(matches!(sent_ops(&p2)[..], [ShardOp::Prepare { attempt: 1, .. }]));
        reply(&p1, Reply::TxPrepared { tx, attempt: 1 });
        reply(&p2, Reply::TxPrepared { tx, attempt: 1 });
        r.pump();
        assert!(matches!(sent_ops(&p1)[..], [ShardOp::Commit { attempt: 1, .. }]));
        assert!(matches!(sent_ops(&p2)[..], [ShardOp::Commit { attempt: 1, .. }]));
        // Group 1 applies; group 2 refuses (its staged range froze
        // under it). The router must abort the attempt everywhere and
        // re-run — not record the write as acked.
        reply(&p1, Reply::TxCommitted { tx, attempt: 1 });
        reply(&p2, Reply::TxRejected { tx, attempt: 1, why: NackReason::Frozen });
        r.pump();
        assert!(r.acked_writes().is_empty(), "half-committed tx recorded as acked");
        assert!(matches!(sent_ops(&p1)[..], [ShardOp::Abort { attempt: 1, .. }]));
        assert!(matches!(sent_ops(&p2)[..], [ShardOp::Abort { attempt: 1, .. }]));
        reply(&p1, Reply::TxAborted { tx, attempt: 1 });
        reply(&p2, Reply::TxAborted { tx, attempt: 1 });
        r.pump();
        r.pump(); // re-issue of the deferred transaction
        assert!(matches!(sent_ops(&p1)[..], [ShardOp::Prepare { attempt: 2, .. }]));
        assert!(matches!(sent_ops(&p2)[..], [ShardOp::Prepare { attempt: 2, .. }]));
        reply(&p1, Reply::TxPrepared { tx, attempt: 2 });
        reply(&p2, Reply::TxPrepared { tx, attempt: 2 });
        r.pump();
        sent_ops(&p1);
        sent_ops(&p2);
        reply(&p1, Reply::TxCommitted { tx, attempt: 2 });
        reply(&p2, Reply::TxCommitted { tx, attempt: 2 });
        r.pump();
        assert!(matches!(r.take(tx), Some(Completion::TxCommitted)));
        assert_eq!(r.acked_writes().get(&a).map(String::as_str), Some("va"));
        assert_eq!(r.acked_writes().get(&b).map(String::as_str), Some("vb"));
    }
}
