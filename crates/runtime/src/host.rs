//! Hosting [`GroupApp`]s on the live runtime.
//!
//! Each app gets a pump: a loop (usually on its own thread) that owns
//! the member's [`GroupHandle`], feeds delivered events and send
//! completions to the app, fires wall-clock timers, and executes the
//! app's [`Ctx`] requests. As on the simulated host, mutating `Ctx`
//! calls are buffered during a callback and applied when it returns —
//! the two hosts present one behavioural contract (DESIGN.md §8,
//! repository root), which is what lets the cross-backend conformance
//! suite assert identical per-member delivery orders.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use amoeba_app::cmd::{AppCmd, BufferedCtx, HostView};
use amoeba_app::{AppEvent, GroupApp, TimerId};
use amoeba_core::{GroupConfig, GroupError, GroupEvent, GroupId, GroupInfo, Seqno};
use bytes::Bytes;
use crossbeam::channel;

use crate::fault::FaultPlan;
use crate::handle::{Amoeba, GroupHandle};

/// How an app's hosting ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Terminal {
    /// `Ctx::stop`: cease pumping, keep the membership alive until the
    /// host tears down.
    Stop,
    /// `Ctx::leave`: leave the group gracefully.
    Leave,
    /// `Ctx::crash`: vanish without a leave.
    Crash,
    /// The event stream disconnected under us (expelled, or the
    /// runtime is shutting down).
    Disconnected,
}

/// What a live app reads synchronously during a callback (the
/// buffering of its writes lives in [`BufferedCtx`], shared with the
/// simulated host).
struct LiveView<'a> {
    handle: &'a GroupHandle,
    start: Instant,
}

impl HostView for LiveView<'_> {
    fn now(&self) -> Duration {
        self.start.elapsed()
    }

    fn info(&self) -> GroupInfo {
        self.handle.info()
    }

    fn config(&self) -> GroupConfig {
        self.handle.shared.core.lock().config().clone()
    }
}

/// One app being pumped over one membership.
struct Pump {
    handle: Option<GroupHandle>,
    app: Box<dyn GroupApp>,
    start: Instant,
    window: usize,
    in_flight: usize,
    pending: VecDeque<Bytes>,
    timers: HashMap<TimerId, Instant>,
    terminal: Option<Terminal>,
}

enum Call {
    Start,
    Event(AppEvent),
    Timer(TimerId),
}

impl Pump {
    fn new(handle: GroupHandle, app: Box<dyn GroupApp>) -> Self {
        let window = handle.shared.core.lock().config().send_window.max(1);
        Pump {
            handle: Some(handle),
            app,
            start: Instant::now(),
            window,
            in_flight: 0,
            pending: VecDeque::new(),
            timers: HashMap::new(),
            terminal: None,
        }
    }

    fn dispatch(&mut self, call: Call) {
        if self.terminal.is_some() {
            return;
        }
        let handle = self.handle.as_ref().expect("handle present until terminal");
        let mut ctx = BufferedCtx::new(LiveView { handle, start: self.start });
        match call {
            Call::Start => self.app.on_start(&mut ctx),
            Call::Event(ev) => self.app.on_event(&mut ctx, ev),
            Call::Timer(id) => self.app.on_timer(&mut ctx, id),
        }
        let cmds = ctx.cmds;
        let mut followups = Vec::new();
        for cmd in cmds {
            // Terminal requests void the rest of the batch (identical
            // to the simulated host).
            if !self.apply(cmd, &mut followups) {
                break;
            }
        }
        self.flush_sends();
        // Completions of blocking requests (ResetDone) dispatch only
        // after the requesting callback's whole batch has applied —
        // the same "asynchronous, after the apply" ordering their
        // protocol counterparts have on the simulated host.
        for ev in followups {
            self.dispatch(Call::Event(ev));
        }
    }

    /// Applies one request; returns false if it was terminal (the rest
    /// of the batch is void).
    fn apply(&mut self, cmd: AppCmd, followups: &mut Vec<AppEvent>) -> bool {
        match cmd {
            AppCmd::Send(payload) => self.pending.push_back(payload),
            AppCmd::Reset(min_members) => {
                // Blocking recovery on the pump thread: deliveries
                // queue up behind it, exactly like an application
                // thread calling the paper's ResetGroup.
                let result = self
                    .handle
                    .as_ref()
                    .expect("handle present until terminal")
                    .reset_group(min_members);
                followups.push(AppEvent::ResetDone(result.map_err(Into::into)));
            }
            AppCmd::Leave => {
                self.finish(Terminal::Leave);
                return false;
            }
            AppCmd::Crash => {
                self.finish(Terminal::Crash);
                return false;
            }
            AppCmd::SetTimer(id, after) => {
                self.timers.insert(id, Instant::now() + after);
            }
            AppCmd::CancelTimer(id) => {
                self.timers.remove(&id);
            }
            AppCmd::Stop => {
                self.finish(Terminal::Stop);
                return false;
            }
        }
        true
    }

    fn finish(&mut self, terminal: Terminal) {
        if self.terminal.is_none() {
            self.terminal = Some(terminal);
            self.timers.clear();
            self.pending.clear();
        }
    }

    fn flush_sends(&mut self) {
        if self.terminal.is_some() {
            return;
        }
        let Some(handle) = self.handle.as_ref() else { return };
        while self.in_flight < self.window {
            let Some(payload) = self.pending.pop_front() else { break };
            handle.shared.submit_send(payload);
            self.in_flight += 1;
        }
    }

    fn next_deadline(&self) -> Option<Instant> {
        self.timers.values().min().copied()
    }

    fn fire_expired(&mut self) {
        loop {
            if self.terminal.is_some() {
                return;
            }
            let now = Instant::now();
            let due = self
                .timers
                .iter()
                .filter(|(_, &at)| at <= now)
                .map(|(&id, &at)| (at, id))
                .min();
            let Some((_, id)) = due else { return };
            self.timers.remove(&id);
            self.dispatch(Call::Timer(id));
        }
    }

    /// Runs the app to completion; returns it plus the handle (kept
    /// alive on `Ctx::stop`, consumed by leave/crash).
    fn run(mut self) -> (Box<dyn GroupApp>, Option<GroupHandle>) {
        self.dispatch(Call::Start);
        while self.terminal.is_none() {
            let timeout = self
                .next_deadline()
                .map(|at| at.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_millis(100));
            let handle = self.handle.as_ref().expect("handle present until terminal");
            enum Polled {
                Event(GroupEvent),
                SendDone(Result<Seqno, GroupError>),
                Gone,
                Idle,
            }
            let polled = {
                let events = &handle.events_rx;
                let dones = &handle.shared.send_done_rx;
                channel::select! {
                    recv(events) -> ev => {
                        match ev {
                            Ok(ev) => Polled::Event(ev),
                            Err(_) => Polled::Gone,
                        }
                    }
                    recv(dones) -> r => {
                        match r {
                            Ok(r) => Polled::SendDone(r),
                            Err(_) => Polled::Gone,
                        }
                    }
                    default(timeout) => { Polled::Idle }
                }
            };
            match polled {
                Polled::Event(ev) => self.dispatch(Call::Event(AppEvent::Group(ev))),
                Polled::SendDone(r) => {
                    self.in_flight = self.in_flight.saturating_sub(1);
                    self.dispatch(Call::Event(AppEvent::SendDone(r.map_err(Into::into))));
                }
                Polled::Gone => self.finish(Terminal::Disconnected),
                Polled::Idle => {}
            }
            self.fire_expired();
        }
        let handle = self.handle.take();
        match self.terminal {
            Some(Terminal::Leave) => {
                if let Some(h) = handle {
                    let _ = h.leave_group();
                }
                (self.app, None)
            }
            Some(Terminal::Crash) => {
                if let Some(h) = handle {
                    h.crash();
                }
                (self.app, None)
            }
            // Stop / Disconnected: hand the membership back so the
            // host controls when it ends (mirrors the simulated host,
            // where a stopped app's protocol entity keeps running).
            _ => (self.app, handle),
        }
    }
}

/// Hosts a set of [`GroupApp`]s as one live group: the first app added
/// founds the group (and sequences), the rest join in order (so member
/// ids match the simulated host), then every app is pumped on its own
/// runtime thread. [`LiveHost::run`] returns once every app has ended;
/// memberships of merely *stopped* apps are torn down together at that
/// point.
///
/// This is the live backend of the portable application API — the same
/// boxed apps run unmodified under `amoeba-kernel`'s `SimHost` (the
/// facade crate's `amoeba::app::run` picks between them).
pub struct LiveHost {
    amoeba: Amoeba,
    group: GroupId,
    config: GroupConfig,
    apps: Vec<Box<dyn GroupApp>>,
}

impl LiveHost {
    /// A host over a fresh fault-injected in-memory network.
    pub fn new(seed: u64, fault: FaultPlan, group: GroupId, config: GroupConfig) -> Self {
        LiveHost { amoeba: Amoeba::new(seed, fault), group, config, apps: Vec::new() }
    }

    /// A host over an existing installation — whatever transport it
    /// runs on. This is how the UDP backend hosts unmodified apps: an
    /// `Amoeba::over_transport(udp_net, …)` installation slots in and
    /// everything above (formation order, pumping, the conformance
    /// contract) stays identical.
    pub fn with_amoeba(amoeba: Amoeba, group: GroupId, config: GroupConfig) -> Self {
        LiveHost { amoeba, group, config, apps: Vec::new() }
    }

    /// Direct access to the underlying installation (tests adjust
    /// faults mid-run).
    pub fn amoeba(&self) -> &Amoeba {
        &self.amoeba
    }

    /// Adds a member running `app`; returns its join order (the first
    /// app founds the group and sequences).
    pub fn add_app(&mut self, app: Box<dyn GroupApp>) -> usize {
        self.apps.push(app);
        self.apps.len() - 1
    }

    /// Runs one app over an existing membership on the calling thread,
    /// returning the app when it stops, leaves, or crashes. The
    /// building block under [`LiveHost::run`], public for custom
    /// topologies (multiple groups, staggered joins).
    ///
    /// The second value is the still-live handle when the app merely
    /// *stopped* (`Ctx::stop` promises the membership outlives the
    /// app until the host tears down — the caller decides when that
    /// is, typically after every cooperating app has finished);
    /// `None` after `leave`/`crash`, which consume it.
    pub fn pump(
        handle: GroupHandle,
        app: Box<dyn GroupApp>,
    ) -> (Box<dyn GroupApp>, Option<GroupHandle>) {
        Pump::new(handle, app).run()
    }

    /// Forms the group, pumps every app on its own thread, and returns
    /// the apps (in `add_app` order) once all have ended.
    ///
    /// # Panics
    ///
    /// Panics if no app was added, or if forming the group fails
    /// (`CreateGroup`/`JoinGroup` errors are configuration mistakes at
    /// this level, not runtime outcomes).
    pub fn run(self) -> Vec<Box<dyn GroupApp>> {
        assert!(!self.apps.is_empty(), "LiveHost::run needs at least one app");
        // Join strictly in order so member ids are deterministic and
        // every member is admitted before any app starts — the same
        // formation the simulated host performs.
        let mut handles = Vec::new();
        for i in 0..self.apps.len() {
            let handle = if i == 0 {
                self.amoeba.create_group(self.group, self.config.clone())
            } else {
                self.amoeba.join_group(self.group, self.config.clone())
            }
            .expect("group formation");
            handles.push(handle);
        }
        let threads: Vec<_> = handles
            .into_iter()
            .zip(self.apps)
            .enumerate()
            .map(|(i, (handle, app))| {
                std::thread::Builder::new()
                    .name(format!("amoeba-app-{i}"))
                    .spawn(move || Pump::new(handle, app).run())
                    .expect("spawn app pump thread")
            })
            .collect();
        // Collect every app first, keeping surviving handles alive so
        // stopped members do not look crashed to still-running ones.
        let mut apps = Vec::new();
        let mut survivors = Vec::new();
        for t in threads {
            let (app, handle) = t.join().expect("app pump thread");
            apps.push(app);
            survivors.push(handle);
        }
        drop(survivors);
        apps
    }
}
