//! Atomic state transfer for joining members — the extension the paper
//! wished it had.
//!
//! §5: "the system did not have good support for a process (re)joining
//! a given group. A library for atomic state transfer as provided in
//! Isis would have again simplified building these fault-tolerant
//! programs." This module is that library, built purely on the public
//! group primitives (no protocol changes): proof of the paper's other
//! §5 claim, that user-level layers compose well on these primitives.
//!
//! # How the cut works
//!
//! A [`Replica`] owns a [`GroupHandle`] plus application state that is
//! a deterministic function of the delivered operation stream. A joiner
//! broadcasts a *state request* marker; because the marker is totally
//! ordered at some seqno S, "the state at S" is well defined and
//! identical at every member. The lowest-numbered other member answers
//! with a snapshot taken exactly when it delivers S (chunked to fit the
//! 8000-byte message cap). The joiner restores the snapshot and then
//! applies the operations it buffered with seqno > S — bitwise
//! convergence with no pause in the group's normal traffic.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use amoeba_core::{Error, GroupConfig, GroupError, GroupEvent, GroupId, GroupInfo, MemberId, Seqno};
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::handle::{Amoeba, GroupHandle};

/// Application state kept in lockstep by the ordered operation stream.
pub trait GroupState: Default {
    /// Applies one ordered operation.
    fn apply(&mut self, seqno: Seqno, origin: MemberId, op: &Bytes);
    /// Serializes the full state.
    fn snapshot(&self) -> Bytes;
    /// Replaces the state from a snapshot.
    fn restore(&mut self, snapshot: &Bytes);
}

const MARKER: u8 = 0xA5;
const KIND_REQUEST: u8 = 1;
const KIND_CHUNK: u8 = 2;
/// Payload budget per snapshot chunk (the protocol caps messages at
/// 8000 bytes; leave room for the marker header).
const CHUNK: usize = 7_000;

enum Marker {
    Request { nonce: u64 },
    Chunk { nonce: u64, index: u16, count: u16, data: Bytes },
}

fn encode_request(nonce: u64) -> Bytes {
    let mut b = BytesMut::with_capacity(10);
    b.put_u8(MARKER);
    b.put_u8(KIND_REQUEST);
    b.put_u64(nonce);
    b.freeze()
}

fn encode_chunk(nonce: u64, index: u16, count: u16, data: &[u8]) -> Bytes {
    let mut b = BytesMut::with_capacity(14 + data.len());
    b.put_u8(MARKER);
    b.put_u8(KIND_CHUNK);
    b.put_u64(nonce);
    b.put_u16(index);
    b.put_u16(count);
    b.put_slice(data);
    b.freeze()
}

fn decode_marker(payload: &Bytes) -> Option<Marker> {
    let mut buf = payload.clone();
    if buf.remaining() < 2 || buf.get_u8() != MARKER {
        return None;
    }
    match buf.get_u8() {
        KIND_REQUEST if buf.remaining() >= 8 => Some(Marker::Request { nonce: buf.get_u64() }),
        KIND_CHUNK if buf.remaining() >= 12 => {
            let nonce = buf.get_u64();
            let index = buf.get_u16();
            let count = buf.get_u16();
            Some(Marker::Chunk { nonce, index, count, data: buf.copy_to_bytes(buf.remaining()) })
        }
        _ => None,
    }
}

/// Why a replica operation failed.
#[derive(Debug)]
pub enum ReplicaError {
    /// The underlying group primitive failed.
    Group(GroupError),
    /// The event stream ended.
    Receive(Error),
    /// State transfer did not complete in time (no live member
    /// answered the snapshot request).
    TransferTimeout,
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaError::Group(e) => write!(f, "group primitive failed: {e}"),
            ReplicaError::Receive(e) => write!(f, "event stream ended: {e}"),
            ReplicaError::TransferTimeout => write!(f, "state transfer timed out"),
        }
    }
}

impl std::error::Error for ReplicaError {}

impl From<GroupError> for ReplicaError {
    fn from(e: GroupError) -> Self {
        ReplicaError::Group(e)
    }
}

impl From<Error> for ReplicaError {
    fn from(e: Error) -> Self {
        ReplicaError::Receive(e)
    }
}

/// A state-machine replica on a group: ordered operations in,
/// deterministic state out, with join-time state transfer.
#[derive(Debug)]
pub struct Replica<S: GroupState> {
    handle: GroupHandle,
    state: S,
}

impl<S: GroupState> Replica<S> {
    /// Founds the group with empty state.
    ///
    /// # Errors
    ///
    /// Propagates `CreateGroup` failures.
    pub fn create(
        amoeba: &Amoeba,
        group: GroupId,
        config: GroupConfig,
    ) -> Result<Self, ReplicaError> {
        let handle = amoeba.create_group(group, config)?;
        Ok(Replica { handle, state: S::default() })
    }

    /// Joins the group *and* acquires the state: requests a snapshot
    /// cut at a totally-ordered point, buffers later operations, and
    /// converges before returning.
    ///
    /// # Errors
    ///
    /// Propagates join failures; [`ReplicaError::TransferTimeout`] when
    /// no member answers within `timeout`.
    pub fn join(
        amoeba: &Amoeba,
        group: GroupId,
        config: GroupConfig,
        timeout: Duration,
    ) -> Result<Self, ReplicaError> {
        let handle = amoeba.join_group(group, config)?;
        let me = handle.info().me;
        let nonce = me.0 as u64 ^ 0x5354_5346; // deterministic per member
        handle.send_to_group(encode_request(nonce))?;

        let mut state = S::default();
        let mut cut: Option<Seqno> = None;
        let mut buffered: BTreeMap<Seqno, (MemberId, Bytes)> = BTreeMap::new();
        let mut chunks: BTreeMap<u16, Bytes> = BTreeMap::new();
        let mut chunk_count: Option<u16> = None;
        let deadline = Instant::now() + timeout;

        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(ReplicaError::TransferTimeout);
            }
            let ev = match handle.receive_timeout(remaining) {
                Ok(ev) => ev,
                Err(Error::Timeout) => return Err(ReplicaError::TransferTimeout),
                Err(e) => return Err(e.into()),
            };
            let GroupEvent::Message { seqno, origin, payload } = ev else { continue };
            match decode_marker(&payload) {
                Some(Marker::Request { nonce: n }) if n == nonce && origin == me => {
                    // Our own request: this is the cut point.
                    cut = Some(seqno);
                }
                Some(Marker::Chunk { nonce: n, index, count, data }) if n == nonce => {
                    chunk_count = Some(count);
                    chunks.insert(index, data);
                }
                Some(_) => {} // someone else's transfer
                None => {
                    // An ordinary operation: applicable only once we
                    // know the cut; ops after the cut are buffered.
                    match cut {
                        Some(c) if seqno > c => {
                            buffered.insert(seqno, (origin, payload));
                        }
                        _ => {} // before our cut: covered by the snapshot
                    }
                }
            }
            if let Some(count) = chunk_count {
                if chunks.len() == count as usize {
                    let mut snapshot = BytesMut::new();
                    for (_, part) in std::mem::take(&mut chunks) {
                        snapshot.put_slice(&part);
                    }
                    state.restore(&snapshot.freeze());
                    for (seqno, (origin, op)) in buffered {
                        state.apply(seqno, origin, &op);
                    }
                    return Ok(Replica { handle, state });
                }
            }
        }
    }

    /// Submits an operation into the total order (blocking).
    ///
    /// # Errors
    ///
    /// Propagates `SendToGroup` failures.
    pub fn submit(&self, op: Bytes) -> Result<Seqno, ReplicaError> {
        debug_assert_ne!(op.first(), Some(&MARKER), "0xA5-prefixed payloads are reserved");
        Ok(self.handle.send_to_group(op)?)
    }

    /// Processes the next ordered event (applying operations and
    /// answering other members' state requests). Returns `false` on
    /// timeout.
    ///
    /// # Errors
    ///
    /// Propagates a closed event stream.
    pub fn pump(&mut self, timeout: Duration) -> Result<bool, ReplicaError> {
        match self.handle.receive_timeout(timeout) {
            Ok(GroupEvent::Message { seqno, origin, payload }) => {
                match decode_marker(&payload) {
                    Some(Marker::Request { nonce }) => {
                        self.maybe_answer_request(origin, nonce)?;
                    }
                    Some(Marker::Chunk { .. }) => {} // someone's transfer
                    None => self.state.apply(seqno, origin, &payload),
                }
                Ok(true)
            }
            Ok(_) => Ok(true), // membership events need no state change
            Err(Error::Timeout) => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// Pumps until the stream is quiet for `quiet`.
    ///
    /// # Errors
    ///
    /// Propagates a closed event stream.
    pub fn pump_until_quiet(&mut self, quiet: Duration) -> Result<(), ReplicaError> {
        while self.pump(quiet)? {}
        Ok(())
    }

    /// The joiner's snapshot is served by the lowest-numbered live
    /// member other than the requester — deterministic, so exactly one
    /// member answers.
    fn maybe_answer_request(&self, requester: MemberId, nonce: u64) -> Result<(), ReplicaError> {
        let info = self.handle.info();
        let responder = info.members.iter().map(|m| m.id).find(|&id| id != requester);
        if responder != Some(info.me) {
            return Ok(());
        }
        let snapshot = self.state.snapshot();
        let parts: Vec<&[u8]> = if snapshot.is_empty() {
            vec![&[]]
        } else {
            snapshot.chunks(CHUNK).collect()
        };
        let count = parts.len() as u16;
        for (i, part) in parts.into_iter().enumerate() {
            self.handle.send_to_group(encode_chunk(nonce, i as u16, count, part))?;
        }
        Ok(())
    }

    /// The replicated state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// The underlying group handle.
    pub fn handle(&self) -> &GroupHandle {
        &self.handle
    }

    /// `GetInfoGroup` passthrough.
    pub fn info(&self) -> GroupInfo {
        self.handle.info()
    }

    /// Leaves the group.
    ///
    /// # Errors
    ///
    /// Propagates `LeaveGroup` failures.
    pub fn leave(self) -> Result<(), ReplicaError> {
        Ok(self.handle.leave_group()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultPlan;

    /// A tiny deterministic register machine for tests: ops are
    /// "key=value" strings; the snapshot is the sorted rendering.
    #[derive(Debug, Default, PartialEq)]
    struct KvState {
        entries: BTreeMap<String, String>,
        applied: u64,
    }

    impl GroupState for KvState {
        fn apply(&mut self, _seqno: Seqno, _origin: MemberId, op: &Bytes) {
            let text = String::from_utf8_lossy(op);
            if let Some((k, v)) = text.split_once('=') {
                self.entries.insert(k.into(), v.into());
            }
            self.applied += 1;
        }

        fn snapshot(&self) -> Bytes {
            let mut out = String::new();
            for (k, v) in &self.entries {
                out.push_str(k);
                out.push('=');
                out.push_str(v);
                out.push('\n');
            }
            out.push_str(&format!("#applied={}\n", self.applied));
            Bytes::from(out)
        }

        fn restore(&mut self, snapshot: &Bytes) {
            self.entries.clear();
            self.applied = 0;
            for line in String::from_utf8_lossy(snapshot).lines() {
                if let Some(n) = line.strip_prefix("#applied=") {
                    self.applied = n.parse().unwrap_or(0);
                } else if let Some((k, v)) = line.split_once('=') {
                    self.entries.insert(k.into(), v.into());
                }
            }
        }
    }

    #[test]
    fn late_joiner_converges_via_state_transfer() {
        let amoeba = Amoeba::new(51, FaultPlan::reliable());
        let gid = GroupId(9);
        let mut founder: Replica<KvState> =
            Replica::create(&amoeba, gid, GroupConfig::default()).expect("create");

        // Build up history the joiner never saw.
        for i in 0..40 {
            founder.submit(Bytes::from(format!("k{i}=v{i}"))).expect("submit");
        }
        founder.pump_until_quiet(Duration::from_millis(300)).expect("pump");
        assert_eq!(founder.state().entries.len(), 40);

        // A second replica joins mid-life. Its join triggers the
        // snapshot protocol; pump the founder concurrently so it can
        // answer.
        let joiner_thread = std::thread::spawn({
            move || {
                Replica::<KvState>::join(
                    &amoeba,
                    gid,
                    GroupConfig::default(),
                    Duration::from_secs(30),
                )
            }
        });
        // Keep serving until the joiner returns.
        let start = Instant::now();
        let joiner = loop {
            founder.pump(Duration::from_millis(50)).expect("founder pump");
            if joiner_thread.is_finished() {
                break joiner_thread.join().expect("thread").expect("join+transfer");
            }
            assert!(start.elapsed() < Duration::from_secs(60), "transfer stuck");
        };
        assert_eq!(joiner.state().entries, founder.state().entries);
        assert_eq!(joiner.state().applied, 40, "snapshot carries the op count");
    }

    #[test]
    fn joiner_applies_operations_after_the_cut() {
        let amoeba = Amoeba::new(52, FaultPlan::reliable());
        let gid = GroupId(10);
        let mut founder: Replica<KvState> =
            Replica::create(&amoeba, gid, GroupConfig::default()).expect("create");
        for i in 0..10 {
            founder.submit(Bytes::from(format!("pre{i}=x"))).expect("submit");
        }

        let joiner_thread = std::thread::spawn({
            move || {
                Replica::<KvState>::join(
                    &amoeba,
                    gid,
                    GroupConfig::default(),
                    Duration::from_secs(30),
                )
                .map(|j| (j, amoeba))
            }
        });
        // While the transfer is in flight, more writes land; the joiner
        // must apply the post-cut ones on top of the snapshot.
        let start = Instant::now();
        let mut extra = 0;
        let (joiner, _amoeba) = loop {
            if extra < 5 {
                founder.submit(Bytes::from(format!("post{extra}=y"))).expect("submit");
                extra += 1;
            }
            founder.pump(Duration::from_millis(30)).expect("founder pump");
            if joiner_thread.is_finished() {
                break joiner_thread.join().expect("thread").expect("join");
            }
            assert!(start.elapsed() < Duration::from_secs(60), "transfer stuck");
        };
        let mut joiner = joiner;
        founder.pump_until_quiet(Duration::from_millis(400)).expect("founder quiet");
        joiner.pump_until_quiet(Duration::from_millis(400)).expect("joiner quiet");
        assert_eq!(joiner.state().entries, founder.state().entries);
        assert_eq!(joiner.state().entries.len(), 15);
    }

    #[test]
    fn multi_chunk_snapshot_survives_transfer() {
        let amoeba = Amoeba::new(53, FaultPlan::reliable());
        let gid = GroupId(11);
        let mut founder: Replica<KvState> =
            Replica::create(&amoeba, gid, GroupConfig::default()).expect("create");
        // ~60 entries × ~120 bytes ⇒ a snapshot well over one 7000-byte
        // chunk.
        for i in 0..60 {
            let big = "v".repeat(100);
            founder.submit(Bytes::from(format!("key-number-{i:04}={big}"))).expect("submit");
        }
        founder.pump_until_quiet(Duration::from_millis(300)).expect("pump");
        assert!(founder.state().snapshot().len() > CHUNK);

        let joiner_thread = std::thread::spawn({
            move || {
                Replica::<KvState>::join(
                    &amoeba,
                    gid,
                    GroupConfig::default(),
                    Duration::from_secs(30),
                )
            }
        });
        let start = Instant::now();
        let joiner = loop {
            founder.pump(Duration::from_millis(50)).expect("founder pump");
            if joiner_thread.is_finished() {
                break joiner_thread.join().expect("thread").expect("join");
            }
            assert!(start.elapsed() < Duration::from_secs(60), "transfer stuck");
        };
        assert_eq!(joiner.state().entries, founder.state().entries);
        assert_eq!(joiner.state().entries.len(), 60);
    }

    #[test]
    fn marker_codec_roundtrips() {
        match decode_marker(&encode_request(42)) {
            Some(Marker::Request { nonce }) => assert_eq!(nonce, 42),
            _ => panic!("request marker lost"),
        }
        match decode_marker(&encode_chunk(7, 2, 5, b"abc")) {
            Some(Marker::Chunk { nonce, index, count, data }) => {
                assert_eq!((nonce, index, count), (7, 2, 5));
                assert_eq!(&data[..], b"abc");
            }
            _ => panic!("chunk marker lost"),
        }
        assert!(decode_marker(&Bytes::from_static(b"plain-operation")).is_none());
        assert!(decode_marker(&Bytes::new()).is_none());
    }
}
