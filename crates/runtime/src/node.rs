//! The per-member driver: a thread that feeds packets and timer
//! expirations to the sans-io [`GroupCore`] and executes its actions.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use amoeba_core::{
    decode_wire_frame, Action, Dest, FrameEncoder, GroupCore, GroupError, GroupEvent,
    GroupId, GroupInfo, Seqno, TimerKind,
};
use amoeba_flip::FlipAddress;
use amoeba_net::{Transport, TransportSender};
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Condvar, Mutex};

use crate::net::Datagram;

/// A one-shot completion slot for a blocking primitive.
pub(crate) struct Slot<T> {
    value: Mutex<Option<T>>,
    cv: Condvar,
}

impl<T> Slot<T> {
    fn new() -> Self {
        Slot { value: Mutex::new(None), cv: Condvar::new() }
    }

    pub(crate) fn put(&self, v: T) {
        *self.value.lock() = Some(v);
        self.cv.notify_all();
    }

    /// Blocks until a value arrives.
    ///
    /// # Panics
    ///
    /// Panics after `deadline` — the protocol's own retry budgets bound
    /// every operation, so an expiry here is a harness bug, not a
    /// legitimate outcome.
    pub(crate) fn wait(&self, deadline: Duration, what: &str) -> T {
        let mut guard = self.value.lock();
        let end = Instant::now() + deadline;
        while guard.is_none() {
            if self.cv.wait_until(&mut guard, end).timed_out() {
                panic!("blocking {what} did not complete within {deadline:?}");
            }
        }
        guard.take().expect("checked above")
    }

    fn clear(&self) {
        *self.value.lock() = None;
    }
}

pub(crate) enum Ctl {
    /// Timer table changed; recompute the select deadline.
    Kick,
    /// Stop the driver.
    Shutdown,
}

/// State shared between the driver thread and the API handle.
pub(crate) struct NodeShared {
    pub(crate) core: Mutex<GroupCore>,
    pub(crate) net: Arc<dyn Transport>,
    /// This endpoint's frame encoder (reusable scratch, DESIGN.md §7).
    encoder: Mutex<FrameEncoder>,
    /// This endpoint's sending port on the fabric (carries the
    /// epoch-cached membership snapshot for the in-memory transport,
    /// the send-thread queue for UDP).
    sender: Mutex<Box<dyn TransportSender>>,
    pub(crate) group: GroupId,
    pub(crate) addr: FlipAddress,
    pub(crate) timers: Mutex<HashMap<TimerKind, (u64, Instant)>>,
    timer_gen: Mutex<u64>,
    pub(crate) events_tx: Sender<GroupEvent>,
    pub(crate) ctl_tx: Sender<Ctl>,
    /// Send completions, FIFO: every submitted `SendToGroup` produces
    /// exactly one message here, so a pipelining caller pairs them with
    /// its submissions in order (a channel, not a [`Slot`], because a
    /// `send_window` > 1 can have several completions in flight).
    pub(crate) send_done_tx: Sender<Result<Seqno, GroupError>>,
    pub(crate) send_done_rx: Receiver<Result<Seqno, GroupError>>,
    /// Serializes API-level senders: with `send_window` > 1 the core
    /// happily admits two threads' sends, but the FIFO completion
    /// channel would then hand thread A thread B's result. One sender
    /// drives the pipeline at a time (the paper's one-thread-per-call
    /// model); a second caller waits instead of racing.
    pub(crate) send_lock: Mutex<()>,
    pub(crate) join_done: Slot<Result<GroupInfo, GroupError>>,
    pub(crate) leave_done: Slot<Result<(), GroupError>>,
    pub(crate) reset_done: Slot<Result<GroupInfo, GroupError>>,
}

impl NodeShared {
    pub(crate) fn new(
        core: GroupCore,
        net: Arc<dyn Transport>,
        group: GroupId,
        addr: FlipAddress,
        events_tx: Sender<GroupEvent>,
        ctl_tx: Sender<Ctl>,
    ) -> Arc<Self> {
        let (send_done_tx, send_done_rx) = channel::unbounded();
        let sender = Mutex::new(net.sender(addr));
        Arc::new(NodeShared {
            core: Mutex::new(core),
            net,
            encoder: Mutex::new(FrameEncoder::new()),
            sender,
            group,
            addr,
            timers: Mutex::new(HashMap::new()),
            timer_gen: Mutex::new(0),
            events_tx,
            ctl_tx,
            send_done_tx,
            send_done_rx,
            send_lock: Mutex::new(()),
            join_done: Slot::new(),
            leave_done: Slot::new(),
            reset_done: Slot::new(),
        })
    }

    /// Executes protocol actions. Never called while holding the core
    /// lock (sends and slot notifications must not deadlock the driver).
    pub(crate) fn run_actions(&self, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Send { dest, msg } => {
                    // Zero-copy from here on: large payloads ride as a
                    // gathered tail segment; the in-memory transport
                    // refcount-shares the two segments per receiver,
                    // the UDP transport gather-writes them per
                    // fragment (DESIGN.md §7, §12).
                    let frame = self.encoder.lock().encode_frame(&msg);
                    let sender = &mut *self.sender.lock();
                    match dest {
                        Dest::Unicast(to) => sender.unicast(to, frame),
                        Dest::Group => sender.multicast(self.group, frame),
                    }
                }
                Action::SetTimer { kind, after_us } => {
                    let gen = {
                        let mut g = self.timer_gen.lock();
                        *g += 1;
                        *g
                    };
                    let at = Instant::now() + Duration::from_micros(after_us);
                    self.timers.lock().insert(kind, (gen, at));
                    let _ = self.ctl_tx.send(Ctl::Kick);
                }
                Action::CancelTimer { kind } => {
                    self.timers.lock().remove(&kind);
                }
                Action::Deliver(ev) => {
                    let _ = self.events_tx.send(ev);
                }
                Action::SendDone(r) => {
                    let _ = self.send_done_tx.send(r);
                }
                Action::JoinDone(r) => self.join_done.put(r),
                Action::LeaveDone(r) => self.leave_done.put(r),
                Action::ResetDone(r) => self.reset_done.put(r),
            }
        }
    }

    /// Runs a blocking primitive: clears its slot, applies `op` to the
    /// core, executes the resulting actions, and waits for completion.
    pub(crate) fn blocking_op<T>(
        &self,
        slot: &Slot<T>,
        what: &str,
        op: impl FnOnce(&mut GroupCore) -> Vec<Action>,
    ) -> T {
        slot.clear();
        let actions = {
            let mut core = self.core.lock();
            op(&mut core)
        };
        self.run_actions(actions);
        slot.wait(Duration::from_secs(120), what)
    }

    /// Submits one `SendToGroup`. Exactly one completion will arrive on
    /// the send-done channel (possibly `Err(Busy)` synchronously when
    /// the pipelining window is full).
    pub(crate) fn submit_send(&self, payload: bytes::Bytes) {
        let actions = {
            let mut core = self.core.lock();
            core.send_to_group(payload)
        };
        self.run_actions(actions);
    }

    /// Waits for the next send completion, FIFO with submissions. If
    /// the driver died mid-send (the peer disappeared under us — a
    /// real outcome once memberships live in separate OS processes),
    /// the caller gets [`GroupError::Disconnected`], not a panic.
    ///
    /// # Panics
    ///
    /// Panics after 120 s with the driver still alive — the protocol's
    /// retry budgets bound every send, so an expiry here is a harness
    /// bug (see [`Slot::wait`]).
    pub(crate) fn wait_send(&self) -> Result<Seqno, GroupError> {
        match self.send_done_rx.recv_timeout(Duration::from_secs(120)) {
            Ok(r) => r,
            Err(RecvTimeoutError::Disconnected) => Err(GroupError::Disconnected),
            Err(RecvTimeoutError::Timeout) => {
                panic!("blocking SendToGroup did not complete within 120s")
            }
        }
    }

    fn next_deadline(&self) -> Option<Instant> {
        self.timers.lock().values().map(|&(_, at)| at).min()
    }

    fn fire_expired(&self) {
        let now = Instant::now();
        let expired: Vec<TimerKind> = {
            let mut timers = self.timers.lock();
            let kinds: Vec<TimerKind> = timers
                .iter()
                .filter(|(_, &(_, at))| at <= now)
                .map(|(&k, _)| k)
                .collect();
            for k in &kinds {
                timers.remove(k);
            }
            kinds
        };
        for kind in expired {
            let actions = {
                let mut core = self.core.lock();
                core.handle_timer(kind)
            };
            self.run_actions(actions);
        }
    }
}

/// The driver loop: packets, control messages and timers.
pub(crate) fn drive(shared: Arc<NodeShared>, data_rx: Receiver<Datagram>, ctl_rx: Receiver<Ctl>) {
    loop {
        let timeout = shared
            .next_deadline()
            .map(|at| at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(100));
        channel::select! {
            recv(data_rx) -> d => {
                let Ok((from, frame)) = d else { return };
                match decode_wire_frame(frame) {
                    Ok(msg) => {
                        let actions = {
                            let mut core = shared.core.lock();
                            core.handle_message(from, msg)
                        };
                        shared.run_actions(actions);
                    }
                    Err(_) => { /* garbled packet: the protocol's loss
                                   machinery recovers, as on real wires */ }
                }
            }
            recv(ctl_rx) -> c => {
                match c {
                    Ok(Ctl::Kick) => {}
                    Ok(Ctl::Shutdown) | Err(_) => return,
                }
            }
            default(timeout) => {}
        }
        shared.fire_expired();
    }
}
