//! A live, multi-threaded runtime for the Amoeba group protocol.
//!
//! Where `amoeba-kernel` replays the paper's *numbers* on a simulated
//! testbed, this crate runs the very same [`amoeba_core::GroupCore`]
//! state machine under real concurrency: one driver thread per member,
//! an in-memory datagram network with configurable loss, duplication
//! and delay jitter ([`FaultPlan`]), and the paper's blocking user API
//! (Table 1): `CreateGroup`, `JoinGroup`, `SendToGroup`,
//! `ReceiveFromGroup`, `LeaveGroup`, `ResetGroup`, `GetInfoGroup`.
//! Packets really cross thread boundaries as bytes, through the
//! binary codec in `amoeba-core`.
//!
//! The paper (§5) concludes that "the flexibility and modularity of
//! user-level implementations of protocols is likely to outweigh the
//! potential performance loss" — this crate is that user-level
//! implementation. It is the "live" half of DESIGN.md §3 (repository
//! root); `GroupHandle::send_pipelined` exposes the batching and
//! pipelining knobs of DESIGN.md §6.
//!
//! # Example
//!
//! ```
//! use amoeba_runtime::{Amoeba, FaultPlan};
//! use amoeba_core::{GroupConfig, GroupId, GroupEvent};
//! use bytes::Bytes;
//!
//! let amoeba = Amoeba::new(42, FaultPlan::reliable());
//! let a = amoeba.create_group(GroupId(1), GroupConfig::default())?;
//! let b = amoeba.join_group(GroupId(1), GroupConfig::default())?;
//!
//! let seqno = b.send_to_group(Bytes::from_static(b"hello"))?;
//! // Every member receives the ordered event — including the sender.
//! loop {
//!     if let GroupEvent::Message { payload, .. } = a.receive_from_group()? {
//!         assert_eq!(&payload[..], b"hello");
//!         break;
//!     }
//! }
//! # let _ = seqno;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod fault;
mod handle;
mod host;
pub mod multiproc;
mod net;
mod node;
pub mod state_transfer;

pub use amoeba_core::Error;
pub use amoeba_net::{Transport, TransportSender, UdpConfig, UdpNet};
pub use fault::FaultPlan;
pub use handle::{Amoeba, GroupHandle};
pub use host::LiveHost;
pub use net::LiveNet;
pub use state_transfer::{GroupState, Replica, ReplicaError};
