//! The user-facing API: the paper's blocking primitives (Table 1).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use amoeba_core::{
    Error, GroupConfig, GroupCore, GroupError, GroupEvent, GroupId, GroupInfo, Seqno,
};
use amoeba_net::Transport;
use bytes::Bytes;
use crossbeam::channel::{self, Receiver};

use crate::fault::FaultPlan;
use crate::net::LiveNet;
use crate::node::{drive, Ctl, NodeShared};

/// A live Amoeba "installation": processes created through one `Amoeba`
/// share its network fabric (and, for the in-memory fabric, its fault
/// plan). The fabric is any [`Transport`] — the in-memory `LiveNet`
/// (the default) or the inter-process `UdpNet` (via
/// [`Amoeba::over_transport`]).
pub struct Amoeba {
    transport: Arc<dyn Transport>,
    /// Kept alongside the trait object when the fabric is the
    /// in-memory one, so fault-injection tests keep their hooks.
    live: Option<Arc<LiveNet>>,
    next_addr: AtomicU64,
}

impl std::fmt::Debug for Amoeba {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Amoeba")
            .field("live", &self.live)
            .field("next_addr", &self.next_addr)
            .finish()
    }
}

impl Amoeba {
    /// Creates an installation with a seeded, fault-injected in-memory
    /// network.
    pub fn new(seed: u64, fault: FaultPlan) -> Self {
        let net = LiveNet::new(seed, fault);
        Amoeba {
            transport: Arc::new(crate::net::LiveTransport(Arc::clone(&net))),
            live: Some(net),
            next_addr: AtomicU64::new(1),
        }
    }

    /// Creates an installation over an arbitrary datagram fabric (the
    /// UDP backend plugs in here). `first_addr` seeds the FLIP address
    /// allocator: in a multi-process deployment each process claims a
    /// disjoint address range so memberships never collide (the
    /// harness assigns process *i* the addresses from `i + 1`).
    pub fn over_transport(transport: Arc<dyn Transport>, first_addr: u64) -> Self {
        Amoeba { transport, live: None, next_addr: AtomicU64::new(first_addr) }
    }

    /// Direct access to the in-memory fabric (tests adjust faults
    /// mid-run).
    ///
    /// # Panics
    ///
    /// Panics when the installation runs over a non-in-memory
    /// transport — there is no fault plan to adjust on a real socket.
    pub fn net(&self) -> &Arc<LiveNet> {
        self.live.as_ref().expect("fault injection requires the in-memory LiveNet transport")
    }

    /// The fabric behind this installation, whichever transport it is.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// `CreateGroup`: founds a group; the caller becomes member 0 and
    /// the sequencer.
    ///
    /// # Errors
    ///
    /// Returns [`GroupError::BadConfig`] for invalid configuration.
    pub fn create_group(
        &self,
        group: GroupId,
        config: GroupConfig,
    ) -> Result<GroupHandle, GroupError> {
        self.spawn_member(group, config, true)
    }

    /// `JoinGroup`: blocks until admitted (or retries are exhausted).
    ///
    /// # Errors
    ///
    /// Returns [`GroupError::JoinTimeout`] when no sequencer answers,
    /// or [`GroupError::BadConfig`] for invalid configuration.
    pub fn join_group(
        &self,
        group: GroupId,
        config: GroupConfig,
    ) -> Result<GroupHandle, GroupError> {
        self.spawn_member(group, config, false)
    }

    fn spawn_member(
        &self,
        group: GroupId,
        config: GroupConfig,
        create: bool,
    ) -> Result<GroupHandle, GroupError> {
        let addr =
            amoeba_flip::FlipAddress::process(self.next_addr.fetch_add(1, Ordering::Relaxed));
        // Plug into the fabric before the protocol starts talking.
        let data_rx = self.transport.register(addr);
        self.transport.join_mcast(group, addr);
        let (core, actions) = if create {
            GroupCore::create(group, addr, config)?
        } else {
            GroupCore::join(group, addr, config)?
        };
        let (events_tx, events_rx) = channel::unbounded();
        let (ctl_tx, ctl_rx) = channel::unbounded();
        let shared =
            NodeShared::new(core, Arc::clone(&self.transport), group, addr, events_tx, ctl_tx);
        let driver = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("amoeba-{addr}"))
                .spawn(move || drive(shared, data_rx, ctl_rx))
                .expect("spawn driver thread")
        };
        shared.run_actions(actions);
        let handle = GroupHandle { shared, events_rx, driver: Some(driver) };
        // Both create (synchronous) and join (network round trips)
        // complete through the JoinDone slot.
        handle
            .shared
            .join_done
            .wait(Duration::from_secs(120), "JoinGroup")
            .map(|_| handle)
    }
}

/// One process's membership of one group: the paper's primitives as
/// blocking methods. Clone-free by design — the primitives are blocking
/// and one thread drives each call, exactly the model the paper argues
/// for (parallelism via multiple threads, each with its own handle).
///
/// Receive failures are reported through the stack-wide
/// [`amoeba_core::Error`]: [`Error::Disconnected`] once membership has
/// ended, [`Error::Timeout`] when a bounded wait expires.
#[derive(Debug)]
pub struct GroupHandle {
    pub(crate) shared: Arc<NodeShared>,
    pub(crate) events_rx: Receiver<GroupEvent>,
    driver: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for NodeShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeShared").field("addr", &self.addr).field("group", &self.group).finish()
    }
}

impl GroupHandle {
    /// `SendToGroup`: blocks until the message is accepted into the
    /// total order (and, with resilience r > 0, held by r other
    /// kernels). Returns its sequence number.
    ///
    /// Concurrent callers on the same handle serialize: one sender
    /// drives the pipeline at a time, a second blocks until the first
    /// completes (the paper's one-thread-per-call model).
    ///
    /// # Errors
    ///
    /// [`GroupError::MessageTooLarge`], [`GroupError::Recovering`], or
    /// [`GroupError::SequencerUnreachable`] after retry exhaustion.
    pub fn send_to_group(&self, payload: Bytes) -> Result<Seqno, GroupError> {
        let _sender = self.shared.send_lock.lock();
        self.shared.submit_send(payload);
        self.shared.wait_send()
    }

    /// Pipelined `SendToGroup`: streams `payloads` keeping up to the
    /// group's `send_window` requests in flight (with batching on,
    /// queued requests coalesce into `BcastReqBatch` frames — see
    /// DESIGN.md §6). Blocks until every payload has completed and
    /// returns one result per payload, in completion order (equal to
    /// submission order on a loss-free fabric).
    ///
    /// With `send_window` 1 (the default) this degrades to a loop of
    /// blocking [`GroupHandle::send_to_group`] calls.
    pub fn send_pipelined(
        &self,
        payloads: impl IntoIterator<Item = Bytes>,
    ) -> Vec<Result<Seqno, GroupError>> {
        let _sender = self.shared.send_lock.lock();
        let window = self.shared.core.lock().config().send_window.max(1);
        let mut results = Vec::new();
        let mut outstanding = 0usize;
        for payload in payloads {
            if outstanding >= window {
                results.push(self.shared.wait_send());
                outstanding -= 1;
            }
            self.shared.submit_send(payload);
            outstanding += 1;
        }
        while outstanding > 0 {
            results.push(self.shared.wait_send());
            outstanding -= 1;
        }
        results
    }

    /// `ReceiveFromGroup`: blocks for the next totally-ordered event.
    ///
    /// # Errors
    ///
    /// [`Error::Disconnected`] once membership has ended and the
    /// queue is drained.
    pub fn receive_from_group(&self) -> Result<GroupEvent, Error> {
        self.events_rx.recv().map_err(|_| Error::Disconnected)
    }

    /// `ReceiveFromGroup` with a timeout.
    ///
    /// # Errors
    ///
    /// [`Error::Timeout`] if nothing arrives in `timeout`;
    /// [`Error::Disconnected`] once membership has ended.
    pub fn receive_timeout(&self, timeout: Duration) -> Result<GroupEvent, Error> {
        self.events_rx.recv_timeout(timeout).map_err(|e| match e {
            channel::RecvTimeoutError::Timeout => Error::Timeout,
            channel::RecvTimeoutError::Disconnected => Error::Disconnected,
        })
    }

    /// Non-blocking `ReceiveFromGroup`: returns the next event if one
    /// is already queued, `Ok(None)` otherwise. The poll-loop
    /// counterpart of [`GroupHandle::receive_from_group`] (event-driven
    /// hosts and latency-sensitive applications poll between other
    /// work instead of parking a thread).
    ///
    /// # Errors
    ///
    /// [`Error::Disconnected`] once membership has ended and the queue
    /// is drained.
    pub fn try_receive(&self) -> Result<Option<GroupEvent>, Error> {
        match self.events_rx.try_recv() {
            Ok(ev) => Ok(Some(ev)),
            Err(channel::TryRecvError::Empty) => Ok(None),
            Err(channel::TryRecvError::Disconnected) => Err(Error::Disconnected),
        }
    }

    /// `GetInfoGroup`: a snapshot of this member's view.
    pub fn info(&self) -> GroupInfo {
        self.shared.core.lock().info()
    }

    /// `ResetGroup`: rebuilds the group after failures, requiring at
    /// least `min_members` survivors. Returns the new view.
    ///
    /// # Errors
    ///
    /// [`GroupError::TooFewMembers`] when not enough members answered;
    /// [`GroupError::NotMember`] if this process is no longer in the
    /// group.
    pub fn reset_group(&self, min_members: usize) -> Result<GroupInfo, GroupError> {
        self.shared
            .blocking_op(&self.shared.reset_done, "ResetGroup", |core| core.reset(min_members))
    }

    /// `LeaveGroup`: departs gracefully (a leaving sequencer first
    /// drains and hands off), then tears down this process's driver.
    ///
    /// # Errors
    ///
    /// [`GroupError::Busy`] while another blocking primitive is
    /// outstanding.
    pub fn leave_group(mut self) -> Result<(), GroupError> {
        let result =
            self.shared.blocking_op(&self.shared.leave_done, "LeaveGroup", |core| core.leave());
        self.teardown();
        result
    }

    /// Simulates a processor crash: the process vanishes without a
    /// leave — its traffic blackholes and its driver stops. (Testing
    /// hook; the paper's recovery machinery is the answer to this.)
    pub fn crash(mut self) {
        self.teardown();
    }

    fn teardown(&mut self) {
        self.shared.net.unregister(self.shared.addr);
        let _ = self.shared.ctl_tx.send(Ctl::Shutdown);
        if let Some(h) = self.driver.take() {
            let _ = h.join();
        }
    }
}

impl Drop for GroupHandle {
    fn drop(&mut self) {
        if self.driver.is_some() {
            self.teardown();
        }
    }
}
