//! Multi-process harness for the UDP backend.
//!
//! A UDP group only proves anything when its members are separate OS
//! processes. This module is the scaffolding that makes such runs
//! scriptable from an ordinary `#[test]`: the test function is both
//! the parent and the child — the parent re-executes the current test
//! binary once per member (filtered to the same test via `--exact`),
//! and an environment variable tells each copy which member it is.
//! Ports travel over the children's stdin/stdout as `@amoeba-udp …`
//! protocol lines (everything else on stdout — the libtest banner,
//! app chatter — is ignored), so no filesystem or fixed port numbers
//! are involved and parallel test runs cannot collide.
//!
//! The choreography (all lines parent → child unless marked):
//!
//! 1. child *i* binds its endpoint and reports `port i <port>`;
//! 2. `peers <p0> … <pn-1>` gives every child the full port table;
//! 3. `join` is sent to child 0, which founds the group and answers
//!    `ready 0`; then to child 1, and so on — strictly sequential, so
//!    member ids are deterministic (member *i* = process *i*), exactly
//!    like the single-process hosts;
//! 4. `start` (broadcast) releases every child to pump its app;
//! 5. each child reports `done i <report>` when its app stops, then
//!    waits; `exit` (broadcast once *all* surviving children are done)
//!    lets it tear down — the linger keeps every endpoint alive until
//!    nobody can still need a retransmission from it;
//! 6. a child app may emit `mark <text>` lines ([`mark`]); the parent
//!    can be scripted to SIGKILL a chosen member when a matching mark
//!    appears ([`ParentSpec::kill_on_mark`]) — that member's report
//!    slot comes back `None`, and the survivors' recovery is the thing
//!    under test.
//!
//! A watchdog bounds the whole run: on expiry the parent kills every
//! child and panics with what it was still waiting for.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use amoeba_app::GroupApp;
use amoeba_core::{GroupConfig, GroupId};
use amoeba_flip::FlipAddress;
use amoeba_net::{Transport, UdpConfig, UdpNet};
use crossbeam::channel::{self, Receiver, RecvTimeoutError};

use crate::handle::Amoeba;
use crate::host::LiveHost;

/// Env var carrying a child's member index.
pub const ENV_MEMBER: &str = "AMOEBA_UDP_MEMBER";
/// Env var carrying the group size.
pub const ENV_MEMBERS: &str = "AMOEBA_UDP_MEMBERS";

const PREFIX: &str = "@amoeba-udp";

/// `Some((member, members))` when this process is a harness child —
/// call first thing in the test and branch into [`run_child`].
pub fn child_index() -> Option<(usize, usize)> {
    let member = std::env::var(ENV_MEMBER).ok()?.parse().ok()?;
    let members = std::env::var(ENV_MEMBERS).ok()?.parse().ok()?;
    Some((member, members))
}

/// Emits a `mark <text>` protocol line from a child app (single line;
/// the text must not contain `\n`). The parent can kill a member on a
/// matching mark ([`ParentSpec::kill_on_mark`]).
pub fn mark(text: &str) {
    println!("{PREFIX} mark {text}");
    let _ = std::io::stdout().flush();
}

/// What a child needs beyond its app.
pub struct ChildSpec {
    /// The group every member forms.
    pub group: GroupId,
    /// Group configuration (identical across members, as always).
    pub config: GroupConfig,
    /// UDP fabric tuning.
    pub udp: UdpConfig,
}

/// Runs the child role to completion and exits the process. `build`
/// receives `(member, members)` and returns the app plus a report
/// thunk; the thunk runs after the app stops and its (single-line)
/// string travels back to the parent verbatim.
///
/// # Panics
///
/// Panics on any protocol violation (EOF where a command was due,
/// group formation failing) — the parent's watchdog turns a panicked
/// child into a failed test.
pub fn run_child(
    spec: ChildSpec,
    build: impl FnOnce(usize, usize) -> (Box<dyn GroupApp>, Box<dyn FnOnce() -> String>),
) -> ! {
    let (member, members) = child_index().expect("run_child outside a harness child");
    let me = FlipAddress::process(member as u64 + 1);
    let net = UdpNet::new(spec.udp);
    let port = net.bind_endpoint(me).expect("bind child endpoint").port();
    println!("{PREFIX} port {member} {port}");
    let _ = std::io::stdout().flush();

    let mut stdin = BufReader::new(std::io::stdin());
    let ports: Vec<u16> = expect_cmd(&mut stdin, "peers")
        .split_whitespace()
        .map(|p| p.parse().expect("peer port"))
        .collect();
    assert_eq!(ports.len(), members, "one port per member");
    for (j, p) in ports.iter().enumerate() {
        if j != member {
            let at: SocketAddr = ([127, 0, 0, 1], *p).into();
            net.add_peer(FlipAddress::process(j as u64 + 1), at);
        }
    }

    expect_cmd(&mut stdin, "join");
    let amoeba = Amoeba::over_transport(net as Arc<dyn Transport>, member as u64 + 1);
    let handle = if member == 0 {
        amoeba.create_group(spec.group, spec.config)
    } else {
        amoeba.join_group(spec.group, spec.config)
    }
    .expect("child group formation");
    println!("{PREFIX} ready {member}");
    let _ = std::io::stdout().flush();

    expect_cmd(&mut stdin, "start");
    // The report thunk typically captures an `Arc` clone of the app's
    // shared log, so it can run after the boxed app is consumed.
    let (app, report) = build(member, members);
    let (_app, live) = LiveHost::pump(handle, app);
    println!("{PREFIX} done {member} {}", report());
    let _ = std::io::stdout().flush();
    // Linger until the parent says every member is done: our endpoint
    // must stay up while a peer could still need a retransmission.
    await_exit(&mut stdin);
    drop(live);
    std::process::exit(0)
}

fn expect_cmd(stdin: &mut impl BufRead, want: &str) -> String {
    loop {
        let mut line = String::new();
        let n = stdin.read_line(&mut line).expect("read parent command");
        assert!(n > 0, "parent hung up while child awaited `{want}`");
        let line = line.trim_end();
        if let Some(rest) = line.strip_prefix(want) {
            return rest.trim_start().to_string();
        }
    }
}

/// Reads the optional final `exit` command; EOF is treated the same
/// (the parent may already be gone on abnormal paths).
fn await_exit(stdin: &mut impl BufRead) {
    loop {
        let mut line = String::new();
        match stdin.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) if line.trim_end().starts_with("exit") => return,
            Ok(_) => {}
        }
    }
}

/// Parent-side run description.
pub struct ParentSpec {
    /// Group size (= number of child processes).
    pub members: usize,
    /// The test's own name, passed back to the binary with `--exact`.
    pub test_name: String,
    /// SIGKILL member `.0` when a child emits a mark containing `.1`.
    pub kill_on_mark: Option<(usize, String)>,
    /// Watchdog for the whole run.
    pub timeout: Duration,
}

impl ParentSpec {
    /// A plain run: `members` children, 60 s watchdog, no kills.
    pub fn new(members: usize, test_name: &str) -> Self {
        ParentSpec {
            members,
            test_name: test_name.to_string(),
            kill_on_mark: None,
            timeout: Duration::from_secs(60),
        }
    }
}

enum Msg {
    Port(usize, u16),
    Ready(usize),
    Mark(String),
    Done(usize, String),
    /// A child's stdout closed (it exited or was killed).
    Eof(usize),
}

fn parse_msg(i: usize, line: &str) -> Option<Msg> {
    // The prefix is searched for, not anchored: under `--nocapture`
    // libtest prints `test <name> ... ` with no trailing newline, so
    // the child's first protocol line arrives glued to that banner.
    let at = line.find(PREFIX)?;
    let rest = line[at + PREFIX.len()..].trim_start();
    let (cmd, rest) = rest.split_once(' ').unwrap_or((rest, ""));
    match cmd {
        "port" => {
            let (idx, port) = rest.split_once(' ')?;
            Some(Msg::Port(idx.parse().ok()?, port.parse().ok()?))
        }
        "ready" => Some(Msg::Ready(rest.trim().parse().ok()?)),
        "mark" => Some(Msg::Mark(rest.to_string())),
        "done" => {
            let (idx, report) = rest.split_once(' ').unwrap_or((rest, ""));
            Some(Msg::Done(idx.parse().ok()?, report.to_string()))
        }
        _ => {
            let _ = i;
            None
        }
    }
}

struct Fleet {
    children: Vec<Child>,
    stdins: Vec<Option<std::process::ChildStdin>>,
    rx: Receiver<Msg>,
    deadline: Instant,
}

impl Fleet {
    fn next(&mut self, awaiting: &str) -> Msg {
        let left = self.deadline.saturating_duration_since(Instant::now());
        match self.rx.recv_timeout(left) {
            Ok(m) => m,
            Err(RecvTimeoutError::Timeout) => {
                self.kill_all();
                panic!("multi-process run timed out awaiting {awaiting}");
            }
            Err(RecvTimeoutError::Disconnected) => {
                self.kill_all();
                panic!("every child hung up while the parent awaited {awaiting}");
            }
        }
    }

    fn tell(&mut self, i: usize, line: &str) {
        if let Some(stdin) = self.stdins[i].as_mut() {
            // A killed child's pipe may be gone; that's fine.
            let _ = writeln!(stdin, "{line}");
            let _ = stdin.flush();
        }
    }

    fn tell_all(&mut self, line: &str) {
        for i in 0..self.children.len() {
            self.tell(i, line);
        }
    }

    fn kill(&mut self, i: usize) {
        let _ = self.children[i].kill();
        self.stdins[i] = None;
    }

    fn kill_all(&mut self) {
        for i in 0..self.children.len() {
            self.kill(i);
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        // Never leak child processes, least of all on a panicking path.
        self.kill_all();
        for c in &mut self.children {
            let _ = c.wait();
        }
    }
}

/// Runs the parent role: spawns `members` copies of the current test,
/// drives the port-exchange/join/start choreography, optionally kills
/// a member on a scripted mark, and returns each member's report
/// (`None` for a killed member).
///
/// # Panics
///
/// Panics when the watchdog expires or a child violates the protocol.
pub fn run_parent(spec: ParentSpec) -> Vec<Option<String>> {
    let exe = std::env::current_exe().expect("current test binary");
    let (tx, rx) = channel::unbounded();
    let mut children = Vec::new();
    let mut stdins = Vec::new();
    for i in 0..spec.members {
        let mut child = Command::new(&exe)
            .arg(&spec.test_name)
            .arg("--exact")
            .arg("--nocapture")
            .env(ENV_MEMBER, i.to_string())
            .env(ENV_MEMBERS, spec.members.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn harness child");
        stdins.push(child.stdin.take());
        let stdout = child.stdout.take().expect("piped stdout");
        let tx = tx.clone();
        std::thread::Builder::new()
            .name(format!("udp-harness-reader-{i}"))
            .spawn(move || {
                for line in BufReader::new(stdout).lines() {
                    let Ok(line) = line else { break };
                    if let Some(msg) = parse_msg(i, &line) {
                        if tx.send(msg).is_err() {
                            return;
                        }
                    }
                }
                let _ = tx.send(Msg::Eof(i));
            })
            .expect("spawn harness reader");
        children.push(child);
    }
    drop(tx);
    let mut fleet =
        Fleet { children, stdins, rx, deadline: Instant::now() + spec.timeout };

    // 1. Collect every member's port.
    let mut ports: HashMap<usize, u16> = HashMap::new();
    while ports.len() < spec.members {
        match fleet.next("port reports") {
            Msg::Port(i, p) => {
                ports.insert(i, p);
            }
            Msg::Eof(i) => {
                fleet.kill_all();
                panic!("child {i} exited before reporting its port");
            }
            _ => {}
        }
    }
    let table: Vec<String> =
        (0..spec.members).map(|i| ports[&i].to_string()).collect();
    fleet.tell_all(&format!("peers {}", table.join(" ")));

    // 2. Sequential formation, member 0 first: deterministic ids.
    for i in 0..spec.members {
        fleet.tell(i, "join");
        loop {
            match fleet.next("join handshakes") {
                Msg::Ready(j) if j == i => break,
                Msg::Eof(j) => {
                    fleet.kill_all();
                    panic!("child {j} exited during formation");
                }
                _ => {}
            }
        }
    }
    fleet.tell_all("start");

    // 3. Pump until every surviving member reports done.
    let mut reports: Vec<Option<String>> = vec![None; spec.members];
    let mut killed: Vec<bool> = vec![false; spec.members];
    let mut kill_on_mark = spec.kill_on_mark;
    loop {
        let outstanding = (0..spec.members).any(|i| !killed[i] && reports[i].is_none());
        if !outstanding {
            break;
        }
        match fleet.next("app completion") {
            Msg::Done(i, report) => reports[i] = Some(report),
            Msg::Mark(text) => {
                if let Some((victim, pat)) = &kill_on_mark {
                    if text.contains(pat.as_str()) {
                        let victim = *victim;
                        fleet.kill(victim);
                        killed[victim] = true;
                        reports[victim] = None;
                        kill_on_mark = None;
                    }
                }
            }
            Msg::Eof(i) if !killed[i] && reports[i].is_none() => {
                fleet.kill_all();
                panic!("child {i} exited before reporting done");
            }
            _ => {}
        }
    }

    // 4. Synchronized teardown: only now may endpoints close.
    fleet.tell_all("exit");
    for i in 0..spec.members {
        let left = fleet.deadline.saturating_duration_since(Instant::now());
        if !wait_with_deadline(&mut fleet.children[i], left) {
            fleet.kill(i);
        }
    }
    reports
}

/// Waits for a child with a deadline (std has no `wait_timeout`; a
/// short poll is plenty at test scale). `true` if it exited in time.
fn wait_with_deadline(child: &mut Child, deadline: Duration) -> bool {
    let end = Instant::now() + deadline;
    loop {
        match child.try_wait() {
            Ok(Some(_)) => return true,
            Ok(None) => {
                if Instant::now() >= end {
                    return false;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_protocol_lines() {
        assert!(matches!(parse_msg(0, "@amoeba-udp port 2 40123"), Some(Msg::Port(2, 40123))));
        assert!(matches!(parse_msg(0, "@amoeba-udp ready 1"), Some(Msg::Ready(1))));
        assert!(
            matches!(parse_msg(0, "@amoeba-udp mark m2-at-0"), Some(Msg::Mark(t)) if t == "m2-at-0")
        );
        assert!(
            matches!(parse_msg(0, "@amoeba-udp done 0 a:b:c"), Some(Msg::Done(0, r)) if r == "a:b:c")
        );
        assert!(parse_msg(0, "running 1 test").is_none());
        assert!(parse_msg(0, "@amoeba-udp bogus 1").is_none());
        assert!(parse_msg(0, "@amoeba-udp port x y").is_none());
    }
}
