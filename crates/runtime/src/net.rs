//! The in-memory datagram network: endpoints, multicast groups, fault
//! injection and delivery delay.
//!
//! **Send path** (DESIGN.md §7): the authoritative registry (endpoints,
//! multicast groups, fault plan) lives behind one mutex, but senders
//! never take it. Every mutation publishes an immutable [`Snapshot`]
//! and bumps an epoch counter; each sending endpoint keeps an
//! epoch-tagged `Arc` of the snapshot ([`NetCache`]) and revalidates
//! with a single atomic load per datagram. On the fault-free fast path
//! a send is: atomic load, hash lookup, channel push — no global lock,
//! no allocation (the frame bytes are refcount-shared).
//!
//! **Delay path**: deliveries below a small threshold happen inline
//! through unbounded channels (preserving per-link FIFO, like a quiet
//! LAN); longer, jittered deliveries are carried by a single
//! *delay-wheel* thread owning a monotonic schedule — which is what
//! makes reordering possible, exactly the adversity the
//! negative-acknowledgement scheme must absorb. (Earlier versions
//! spawned one sleeper thread per delayed datagram; under a jittered
//! fault plan that was unbounded thread churn.)

use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use amoeba_core::{GroupId, WireFrame};
use amoeba_flip::FlipAddress;
use amoeba_net::{Transport, TransportSender};
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fault::FaultPlan;

/// A raw datagram as delivered to a node: (source address, frame).
/// The frame's segments are refcount-shared, never copied per receiver.
pub(crate) use amoeba_net::Datagram;

/// Deliveries with at most this much delay skip the delay wheel and
/// go straight through the channel.
const INLINE_DELAY: Duration = Duration::from_micros(300);

/// Authoritative membership state, mutated under its mutex.
struct Registry {
    endpoints: HashMap<FlipAddress, Sender<Datagram>>,
    groups: HashMap<GroupId, Vec<FlipAddress>>,
    fault: FaultPlan,
    /// Per-directed-link overrides of the global plan, keyed
    /// `(from, to)` — one direction only, so tests can script
    /// *asymmetric* partitions (A hears B, B never hears A), the live
    /// mirror of the simulator's chaos partitions (DESIGN.md §9).
    link_faults: HashMap<(FlipAddress, FlipAddress), FaultPlan>,
}

/// An immutable copy of the registry that senders read lock-free.
/// Group targets are pre-resolved to their channels.
pub(crate) struct Snapshot {
    endpoints: HashMap<FlipAddress, Sender<Datagram>>,
    groups: HashMap<GroupId, Vec<(FlipAddress, Sender<Datagram>)>>,
    fault: FaultPlan,
    link_faults: HashMap<(FlipAddress, FlipAddress), FaultPlan>,
}

impl Snapshot {
    fn empty() -> Self {
        Snapshot {
            endpoints: HashMap::new(),
            groups: HashMap::new(),
            fault: FaultPlan::reliable(),
            link_faults: HashMap::new(),
        }
    }

    /// The plan governing one directed delivery (the common no-override
    /// case is a single `is_empty` check).
    fn fault_for(&self, from: FlipAddress, to: FlipAddress) -> FaultPlan {
        if self.link_faults.is_empty() {
            return self.fault;
        }
        self.link_faults.get(&(from, to)).copied().unwrap_or(self.fault)
    }
}

/// A sending endpoint's epoch-tagged snapshot handle. Refreshed with
/// one atomic load per send; the registry mutex is touched only when
/// membership actually changed.
pub(crate) struct NetCache {
    epoch: u64,
    snap: Arc<Snapshot>,
}

/// One datagram waiting on the delay wheel.
struct Delayed {
    due: Instant,
    /// Insertion order: ties on `due` deliver FIFO.
    seq: u64,
    tx: Sender<Datagram>,
    datagram: Datagram,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}

impl Eq for Delayed {}

impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-due first.
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

/// The shared network fabric processes plug into.
pub struct LiveNet {
    registry: Mutex<Registry>,
    /// The published snapshot (swapped whole on every mutation).
    snapshot: Mutex<Arc<Snapshot>>,
    /// Bumped after each snapshot swap; senders revalidate against it.
    epoch: AtomicU64,
    /// Fault randomness (touched only on non-trivial fault plans).
    rng: Mutex<StdRng>,
    /// The delay wheel's inbox (thread spawned on first delayed send).
    wheel: Mutex<Option<Sender<Delayed>>>,
    /// Monotone insertion counter for stable delivery order.
    wheel_seq: AtomicU64,
}

impl std::fmt::Debug for LiveNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let reg = self.registry.lock();
        f.debug_struct("LiveNet")
            .field("endpoints", &reg.endpoints.len())
            .field("groups", &reg.groups.len())
            .field("fault", &reg.fault)
            .finish()
    }
}

impl LiveNet {
    /// Creates the fabric with a seeded fault RNG.
    ///
    /// # Panics
    ///
    /// Panics if the fault plan is invalid.
    pub fn new(seed: u64, fault: FaultPlan) -> Arc<Self> {
        fault.validate().expect("valid fault plan");
        let net = Arc::new(LiveNet {
            registry: Mutex::new(Registry {
                endpoints: HashMap::new(),
                groups: HashMap::new(),
                fault,
                link_faults: HashMap::new(),
            }),
            snapshot: Mutex::new(Arc::new(Snapshot::empty())),
            epoch: AtomicU64::new(1),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            wheel: Mutex::new(None),
            wheel_seq: AtomicU64::new(0),
        });
        net.publish(&net.registry.lock());
        net
    }

    /// Rebuilds and publishes the snapshot from the (locked) registry.
    fn publish(&self, reg: &Registry) {
        let snap = Arc::new(Snapshot {
            endpoints: reg.endpoints.clone(),
            groups: reg
                .groups
                .iter()
                .map(|(g, addrs)| {
                    let resolved = addrs
                        .iter()
                        .filter_map(|a| reg.endpoints.get(a).map(|tx| (*a, tx.clone())))
                        .collect();
                    (*g, resolved)
                })
                .collect(),
            fault: reg.fault,
            link_faults: reg.link_faults.clone(),
        });
        *self.snapshot.lock() = snap;
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// A fresh sender-side cache (stale; refreshed on first use).
    pub(crate) fn cache(&self) -> NetCache {
        NetCache { epoch: 0, snap: Arc::new(Snapshot::empty()) }
    }

    fn refresh(&self, cache: &mut NetCache) {
        let now = self.epoch.load(Ordering::Acquire);
        if cache.epoch != now {
            cache.epoch = now;
            cache.snap = Arc::clone(&self.snapshot.lock());
        }
    }

    /// Registers a process endpoint; returns its datagram receiver.
    pub(crate) fn register(&self, addr: FlipAddress) -> Receiver<Datagram> {
        let (tx, rx) = channel::unbounded();
        let mut reg = self.registry.lock();
        reg.endpoints.insert(addr, tx);
        self.publish(&reg);
        rx
    }

    /// Removes an endpoint (a "crashed" or departed process): its
    /// traffic blackholes from now on.
    pub(crate) fn unregister(&self, addr: FlipAddress) {
        let mut reg = self.registry.lock();
        reg.endpoints.remove(&addr);
        for members in reg.groups.values_mut() {
            members.retain(|a| *a != addr);
        }
        self.publish(&reg);
    }

    /// Adds an endpoint to a multicast group.
    pub(crate) fn join_mcast(&self, group: GroupId, addr: FlipAddress) {
        let mut reg = self.registry.lock();
        let members = reg.groups.entry(group).or_default();
        if !members.contains(&addr) {
            members.push(addr);
        }
        self.publish(&reg);
    }

    /// Sends point-to-point.
    pub(crate) fn unicast(
        &self,
        cache: &mut NetCache,
        from: FlipAddress,
        to: FlipAddress,
        frame: WireFrame,
    ) {
        self.refresh(cache);
        let snap = &cache.snap;
        let fault = snap.fault_for(from, to);
        if let Some(tx) = snap.endpoints.get(&to) {
            self.deliver_one(tx, from, frame, fault);
        }
    }

    /// Sends to every group member except the sender (multicast does
    /// not loop back, as on real hardware).
    pub(crate) fn multicast(
        &self,
        cache: &mut NetCache,
        from: FlipAddress,
        group: GroupId,
        frame: WireFrame,
    ) {
        self.refresh(cache);
        let snap = &cache.snap;
        let Some(targets) = snap.groups.get(&group) else { return };
        for (addr, tx) in targets {
            if *addr != from {
                let fault = snap.fault_for(from, *addr);
                self.deliver_one(tx, from, frame.clone(), fault);
            }
        }
    }

    /// Applies the fault plan to one (packet, receiver) pair and hands
    /// it to the channel or the delay wheel.
    fn deliver_one(
        &self,
        tx: &Sender<Datagram>,
        from: FlipAddress,
        frame: WireFrame,
        fault: FaultPlan,
    ) {
        // Fault-free fast path: no randomness, no locks, no copies.
        if fault.loss == 0.0 && fault.duplicate == 0.0 && fault.max_delay <= INLINE_DELAY {
            let _ = tx.send((from, frame));
            return;
        }
        let (copies, delay) = {
            let mut rng = self.rng.lock();
            let copies = if fault.loss > 0.0 && rng.gen_bool(fault.loss) {
                0u32
            } else if fault.duplicate > 0.0 && rng.gen_bool(fault.duplicate) {
                2
            } else {
                1
            };
            if copies == 0 {
                return;
            }
            let span = fault.max_delay.saturating_sub(fault.min_delay);
            let jitter = if span.is_zero() {
                Duration::ZERO
            } else {
                Duration::from_nanos(rng.gen_range(0..span.as_nanos() as u64))
            };
            (copies, fault.min_delay + jitter)
        };
        for _ in 0..copies {
            if delay <= INLINE_DELAY {
                let _ = tx.send((from, frame.clone()));
            } else {
                self.schedule(Instant::now() + delay, tx.clone(), (from, frame.clone()));
            }
        }
    }

    /// Hands a datagram to the delay wheel, spawning it on first use.
    fn schedule(&self, due: Instant, tx: Sender<Datagram>, datagram: Datagram) {
        let seq = self.wheel_seq.fetch_add(1, Ordering::Relaxed);
        let mut wheel = self.wheel.lock();
        let inbox = wheel.get_or_insert_with(|| {
            let (tx, rx) = channel::unbounded();
            std::thread::Builder::new()
                .name("amoeba-net-wheel".into())
                .spawn(move || run_wheel(rx))
                .expect("spawn delay wheel");
            tx
        });
        let _ = inbox.send(Delayed { due, seq, tx, datagram });
    }

    /// Replaces the fault plan at runtime (tests heal the network this
    /// way).
    ///
    /// # Panics
    ///
    /// Panics if the new plan is invalid.
    pub fn set_fault(&self, fault: FaultPlan) {
        fault.validate().expect("valid fault plan");
        let mut reg = self.registry.lock();
        reg.fault = fault;
        self.publish(&reg);
    }

    /// Overrides the fault plan for the *directed* link `from → to`
    /// (other links keep the global plan). One direction only, so
    /// asymmetric partitions are scriptable; cut both directions for a
    /// full partition, and [`LiveNet::clear_link_fault`] to heal.
    /// This is the live counterpart of the simulator's deterministic
    /// chaos partitions (DESIGN.md §9).
    ///
    /// # Panics
    ///
    /// Panics if the plan is invalid.
    pub fn set_link_fault(&self, from: FlipAddress, to: FlipAddress, fault: FaultPlan) {
        fault.validate().expect("valid fault plan");
        let mut reg = self.registry.lock();
        reg.link_faults.insert((from, to), fault);
        self.publish(&reg);
    }

    /// Removes the `from → to` override (the link heals back to the
    /// global plan).
    pub fn clear_link_fault(&self, from: FlipAddress, to: FlipAddress) {
        let mut reg = self.registry.lock();
        reg.link_faults.remove(&(from, to));
        self.publish(&reg);
    }

    /// Removes every per-link override at once (a full heal).
    pub fn clear_link_faults(&self) {
        let mut reg = self.registry.lock();
        reg.link_faults.clear();
        self.publish(&reg);
    }
}

/// [`LiveNet`] behind the transport contract the driver loop speaks
/// (`amoeba_net::Transport`) — interchangeable with the inter-process
/// `UdpNet`. A newtype rather than a direct impl because senders need
/// an owned `Arc` of the fabric (orphan rules aside), and because the
/// fabric's fault-injection internals stay crate-private this way.
pub(crate) struct LiveTransport(pub(crate) Arc<LiveNet>);

impl Transport for LiveTransport {
    fn register(&self, addr: FlipAddress) -> Receiver<Datagram> {
        self.0.register(addr)
    }

    fn unregister(&self, addr: FlipAddress) {
        self.0.unregister(addr)
    }

    fn join_mcast(&self, group: GroupId, addr: FlipAddress) {
        self.0.join_mcast(group, addr)
    }

    fn sender(&self, from: FlipAddress) -> Box<dyn TransportSender> {
        Box::new(LiveSender { net: Arc::clone(&self.0), from, cache: self.0.cache() })
    }
}

/// The in-memory fabric's per-endpoint sending port: owns the epoch-
/// cached membership snapshot sends read instead of the registry lock.
struct LiveSender {
    net: Arc<LiveNet>,
    from: FlipAddress,
    cache: NetCache,
}

impl TransportSender for LiveSender {
    fn unicast(&mut self, to: FlipAddress, frame: WireFrame) {
        self.net.unicast(&mut self.cache, self.from, to, frame);
    }

    fn multicast(&mut self, group: GroupId, frame: WireFrame) {
        self.net.multicast(&mut self.cache, self.from, group, frame);
    }
}

/// The delay wheel: one thread delivering scheduled datagrams at their
/// due instants. Exits once every [`LiveNet`] handle is gone *and* the
/// schedule has drained (already-scheduled packets still arrive on
/// time, like packets in flight on a real wire).
fn run_wheel(rx: Receiver<Delayed>) {
    let mut schedule: BinaryHeap<Delayed> = BinaryHeap::new();
    let mut open = true;
    loop {
        let now = Instant::now();
        while schedule.peek().is_some_and(|d| d.due <= now) {
            let d = schedule.pop().expect("peeked");
            let _ = d.tx.send(d.datagram);
        }
        if !open && schedule.is_empty() {
            return;
        }
        if open {
            let timeout = schedule
                .peek()
                .map(|d| d.due.saturating_duration_since(now))
                .unwrap_or(Duration::from_millis(100));
            match rx.recv_timeout(timeout) {
                Ok(d) => schedule.push(d),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => open = false,
            }
        } else {
            let due = schedule.peek().expect("non-empty").due;
            std::thread::sleep(due.saturating_duration_since(Instant::now()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn addr(n: u64) -> FlipAddress {
        FlipAddress::process(n)
    }

    fn frame(b: &'static [u8]) -> WireFrame {
        WireFrame::from(Bytes::from_static(b))
    }

    #[test]
    fn unicast_reaches_endpoint() {
        let net = LiveNet::new(1, FaultPlan::reliable());
        let mut cache = net.cache();
        let rx = net.register(addr(1));
        net.unicast(&mut cache, addr(2), addr(1), frame(b"hi"));
        let (from, data) = rx.recv_timeout(Duration::from_secs(1)).expect("delivered");
        assert_eq!(from, addr(2));
        assert_eq!(&data.head[..], b"hi");
    }

    #[test]
    fn multicast_excludes_sender() {
        let net = LiveNet::new(1, FaultPlan::reliable());
        let mut cache = net.cache();
        let g = GroupId(9);
        let rx1 = net.register(addr(1));
        let rx2 = net.register(addr(2));
        net.join_mcast(g, addr(1));
        net.join_mcast(g, addr(2));
        net.multicast(&mut cache, addr(1), g, frame(b"m"));
        assert!(rx2.recv_timeout(Duration::from_secs(1)).is_ok());
        assert!(rx1.try_recv().is_err(), "no loopback");
    }

    #[test]
    fn unregistered_endpoint_blackholes() {
        let net = LiveNet::new(1, FaultPlan::reliable());
        let mut cache = net.cache();
        let rx = net.register(addr(1));
        net.unregister(addr(1));
        net.unicast(&mut cache, addr(2), addr(1), frame(b"x"));
        assert!(rx.recv_timeout(Duration::from_millis(50)).is_err());
    }

    #[test]
    fn stale_cache_catches_up_with_membership() {
        let net = LiveNet::new(1, FaultPlan::reliable());
        let mut cache = net.cache();
        let rx1 = net.register(addr(1));
        net.unicast(&mut cache, addr(9), addr(1), frame(b"a"));
        assert!(rx1.recv_timeout(Duration::from_secs(1)).is_ok());
        // A later registration must be visible through the same cache.
        let rx2 = net.register(addr(2));
        net.unicast(&mut cache, addr(9), addr(2), frame(b"b"));
        assert!(rx2.recv_timeout(Duration::from_secs(1)).is_ok());
    }

    #[test]
    fn total_loss_drops_everything() {
        let net = LiveNet::new(1, FaultPlan { loss: 1.0, ..FaultPlan::reliable() });
        let mut cache = net.cache();
        let rx = net.register(addr(1));
        for _ in 0..20 {
            net.unicast(&mut cache, addr(2), addr(1), frame(b"x"));
        }
        assert!(rx.recv_timeout(Duration::from_millis(50)).is_err());
    }

    #[test]
    fn duplication_produces_extra_copies() {
        let net = LiveNet::new(1, FaultPlan { duplicate: 1.0, ..FaultPlan::reliable() });
        let mut cache = net.cache();
        let rx = net.register(addr(1));
        net.unicast(&mut cache, addr(2), addr(1), frame(b"x"));
        assert!(rx.recv_timeout(Duration::from_secs(1)).is_ok());
        assert!(rx.recv_timeout(Duration::from_secs(1)).is_ok(), "second copy expected");
    }

    #[test]
    fn delay_wheel_delivers_on_schedule_without_thread_churn() {
        // Delays past INLINE_DELAY ride the wheel; all must arrive.
        let net = LiveNet::new(
            3,
            FaultPlan {
                min_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(5),
                ..FaultPlan::reliable()
            },
        );
        let mut cache = net.cache();
        let rx = net.register(addr(1));
        let start = Instant::now();
        for _ in 0..50 {
            net.unicast(&mut cache, addr(2), addr(1), frame(b"d"));
        }
        for _ in 0..50 {
            rx.recv_timeout(Duration::from_secs(2)).expect("wheel delivers");
        }
        assert!(start.elapsed() >= Duration::from_millis(1), "not delivered early");
    }

    #[test]
    fn wheel_schedule_orders_by_due_time() {
        let (tx, rx) = channel::unbounded::<Datagram>();
        let (inbox, wheel_rx) = channel::unbounded::<Delayed>();
        let h = std::thread::spawn(move || run_wheel(wheel_rx));
        let now = Instant::now();
        let late = Delayed {
            due: now + Duration::from_millis(30),
            seq: 0,
            tx: tx.clone(),
            datagram: (addr(1), frame(b"late")),
        };
        let early = Delayed {
            due: now + Duration::from_millis(5),
            seq: 1,
            tx,
            datagram: (addr(1), frame(b"early")),
        };
        inbox.send(late).expect("wheel alive");
        inbox.send(early).expect("wheel alive");
        drop(inbox); // wheel drains the schedule, then exits
        let (_, first) = rx.recv_timeout(Duration::from_secs(1)).expect("first");
        let (_, second) = rx.recv_timeout(Duration::from_secs(1)).expect("second");
        assert_eq!(&first.head[..], b"early", "earlier due time delivers first");
        assert_eq!(&second.head[..], b"late");
        h.join().expect("wheel exits after draining");
    }
}
