//! The in-memory datagram network: endpoints, multicast groups, fault
//! injection and delivery delay.
//!
//! Deliveries below a small threshold happen inline through unbounded
//! channels (preserving per-link FIFO, like a quiet LAN); longer,
//! jittered deliveries are carried by short-lived sleeper threads,
//! which is what makes reordering possible — exactly the adversity the
//! negative-acknowledgement scheme must absorb.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use amoeba_core::GroupId;
use amoeba_flip::FlipAddress;
use bytes::Bytes;
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fault::FaultPlan;

/// A raw datagram as delivered to a node: (source address, bytes).
pub(crate) type Datagram = (FlipAddress, Bytes);

/// Deliveries with at most this much delay skip the sleeper thread and
/// go straight through the channel.
const INLINE_DELAY: Duration = Duration::from_micros(300);

struct Registry {
    endpoints: HashMap<FlipAddress, Sender<Datagram>>,
    groups: HashMap<GroupId, Vec<FlipAddress>>,
    rng: StdRng,
    fault: FaultPlan,
}

/// The shared network fabric processes plug into.
pub struct LiveNet {
    registry: Mutex<Registry>,
}

impl std::fmt::Debug for LiveNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let reg = self.registry.lock();
        f.debug_struct("LiveNet")
            .field("endpoints", &reg.endpoints.len())
            .field("groups", &reg.groups.len())
            .field("fault", &reg.fault)
            .finish()
    }
}

impl LiveNet {
    /// Creates the fabric with a seeded fault RNG.
    ///
    /// # Panics
    ///
    /// Panics if the fault plan is invalid.
    pub fn new(seed: u64, fault: FaultPlan) -> Arc<Self> {
        fault.validate().expect("valid fault plan");
        Arc::new(LiveNet {
            registry: Mutex::new(Registry {
                endpoints: HashMap::new(),
                groups: HashMap::new(),
                rng: StdRng::seed_from_u64(seed),
                fault,
            }),
        })
    }

    /// Registers a process endpoint; returns its datagram receiver.
    pub(crate) fn register(&self, addr: FlipAddress) -> Receiver<Datagram> {
        let (tx, rx) = channel::unbounded();
        self.registry.lock().endpoints.insert(addr, tx);
        rx
    }

    /// Removes an endpoint (a "crashed" or departed process): its
    /// traffic blackholes from now on.
    pub(crate) fn unregister(&self, addr: FlipAddress) {
        let mut reg = self.registry.lock();
        reg.endpoints.remove(&addr);
        for members in reg.groups.values_mut() {
            members.retain(|a| *a != addr);
        }
    }

    /// Adds an endpoint to a multicast group.
    pub(crate) fn join_mcast(&self, group: GroupId, addr: FlipAddress) {
        let mut reg = self.registry.lock();
        let members = reg.groups.entry(group).or_default();
        if !members.contains(&addr) {
            members.push(addr);
        }
    }

    /// Sends point-to-point.
    pub(crate) fn unicast(&self, from: FlipAddress, to: FlipAddress, bytes: Bytes) {
        self.transmit(from, &[to], bytes);
    }

    /// Sends to every group member except the sender (multicast does
    /// not loop back, as on real hardware).
    pub(crate) fn multicast(&self, from: FlipAddress, group: GroupId, bytes: Bytes) {
        let targets: Vec<FlipAddress> = {
            let reg = self.registry.lock();
            reg.groups
                .get(&group)
                .map(|m| m.iter().copied().filter(|a| *a != from).collect())
                .unwrap_or_default()
        };
        self.transmit(from, &targets, bytes);
    }

    fn transmit(&self, from: FlipAddress, targets: &[FlipAddress], bytes: Bytes) {
        // Decide each delivery's fate under the lock, execute outside.
        let mut deliveries: Vec<(Sender<Datagram>, Duration, u32)> = Vec::new();
        {
            let mut reg = self.registry.lock();
            let fault = reg.fault;
            for &to in targets {
                let copies = if fault.loss > 0.0 && reg.rng.gen_bool(fault.loss) {
                    0u32
                } else if fault.duplicate > 0.0 && reg.rng.gen_bool(fault.duplicate) {
                    2
                } else {
                    1
                };
                if copies == 0 {
                    continue;
                }
                let span = fault.max_delay.saturating_sub(fault.min_delay);
                let jitter = if span.is_zero() {
                    Duration::ZERO
                } else {
                    Duration::from_nanos(reg.rng.gen_range(0..span.as_nanos() as u64))
                };
                if let Some(tx) = reg.endpoints.get(&to) {
                    deliveries.push((tx.clone(), fault.min_delay + jitter, copies));
                }
            }
        }
        for (tx, delay, copies) in deliveries {
            for _ in 0..copies {
                if delay <= INLINE_DELAY {
                    let _ = tx.send((from, bytes.clone()));
                } else {
                    let tx = tx.clone();
                    let bytes = bytes.clone();
                    std::thread::spawn(move || {
                        std::thread::sleep(delay);
                        let _ = tx.send((from, bytes));
                    });
                }
            }
        }
    }

    /// Replaces the fault plan at runtime (tests heal the network this
    /// way).
    ///
    /// # Panics
    ///
    /// Panics if the new plan is invalid.
    pub fn set_fault(&self, fault: FaultPlan) {
        fault.validate().expect("valid fault plan");
        self.registry.lock().fault = fault;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u64) -> FlipAddress {
        FlipAddress::process(n)
    }

    #[test]
    fn unicast_reaches_endpoint() {
        let net = LiveNet::new(1, FaultPlan::reliable());
        let rx = net.register(addr(1));
        net.unicast(addr(2), addr(1), Bytes::from_static(b"hi"));
        let (from, data) = rx.recv_timeout(Duration::from_secs(1)).expect("delivered");
        assert_eq!(from, addr(2));
        assert_eq!(&data[..], b"hi");
    }

    #[test]
    fn multicast_excludes_sender() {
        let net = LiveNet::new(1, FaultPlan::reliable());
        let g = GroupId(9);
        let rx1 = net.register(addr(1));
        let rx2 = net.register(addr(2));
        net.join_mcast(g, addr(1));
        net.join_mcast(g, addr(2));
        net.multicast(addr(1), g, Bytes::from_static(b"m"));
        assert!(rx2.recv_timeout(Duration::from_secs(1)).is_ok());
        assert!(rx1.try_recv().is_err(), "no loopback");
    }

    #[test]
    fn unregistered_endpoint_blackholes() {
        let net = LiveNet::new(1, FaultPlan::reliable());
        let rx = net.register(addr(1));
        net.unregister(addr(1));
        net.unicast(addr(2), addr(1), Bytes::from_static(b"x"));
        assert!(rx.recv_timeout(Duration::from_millis(50)).is_err());
    }

    #[test]
    fn total_loss_drops_everything() {
        let net = LiveNet::new(1, FaultPlan { loss: 1.0, ..FaultPlan::reliable() });
        let rx = net.register(addr(1));
        for _ in 0..20 {
            net.unicast(addr(2), addr(1), Bytes::from_static(b"x"));
        }
        assert!(rx.recv_timeout(Duration::from_millis(50)).is_err());
    }

    #[test]
    fn duplication_produces_extra_copies() {
        let net = LiveNet::new(1, FaultPlan { duplicate: 1.0, ..FaultPlan::reliable() });
        let rx = net.register(addr(1));
        net.unicast(addr(2), addr(1), Bytes::from_static(b"x"));
        assert!(rx.recv_timeout(Duration::from_secs(1)).is_ok());
        assert!(rx.recv_timeout(Duration::from_secs(1)).is_ok(), "second copy expected");
    }
}
