//! Fault injection configuration for the live transport.

use std::time::Duration;

/// How the in-memory network misbehaves. Applied independently per
/// (packet, receiver) pair, so one multicast can reach some members and
/// not others — the failure mode the negative-acknowledgement scheme
/// exists to fix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability a delivery is dropped.
    pub loss: f64,
    /// Probability a delivery is duplicated.
    pub duplicate: f64,
    /// Minimum one-way delivery delay.
    pub min_delay: Duration,
    /// Maximum one-way delivery delay (uniform between min and max;
    /// reordering happens naturally when the window is wide).
    pub max_delay: Duration,
}

impl FaultPlan {
    /// No loss, no duplication, sub-millisecond delivery.
    pub fn reliable() -> Self {
        FaultPlan {
            loss: 0.0,
            duplicate: 0.0,
            min_delay: Duration::from_micros(50),
            max_delay: Duration::from_micros(200),
        }
    }

    /// A mildly hostile LAN: some loss, some duplication, jitter wide
    /// enough to reorder.
    pub fn lossy(loss: f64) -> Self {
        FaultPlan {
            loss,
            duplicate: loss / 2.0,
            min_delay: Duration::from_micros(50),
            max_delay: Duration::from_millis(2),
        }
    }

    /// Validates probabilities.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.loss) {
            return Err(format!("loss probability {} out of range", self.loss));
        }
        if !(0.0..=1.0).contains(&self.duplicate) {
            return Err(format!("duplicate probability {} out of range", self.duplicate));
        }
        if self.min_delay > self.max_delay {
            return Err("min_delay exceeds max_delay".into());
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::reliable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(FaultPlan::reliable().validate().is_ok());
        assert!(FaultPlan::lossy(0.2).validate().is_ok());
    }

    #[test]
    fn bad_plans_rejected() {
        let mut p = FaultPlan::reliable();
        p.loss = 1.5;
        assert!(p.validate().is_err());
        let mut p = FaultPlan::reliable();
        p.min_delay = Duration::from_secs(1);
        assert!(p.validate().is_err());
    }
}
