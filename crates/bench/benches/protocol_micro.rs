//! Criterion microbenchmarks of the real Rust implementation (not the
//! simulated MC68030): how fast the protocol's hot paths run today.
//!
//! `cargo bench -p amoeba-bench --bench protocol_micro`

use amoeba_core::{
    decode_wire_msg, encode_wire_msg, Body, FrameEncoder, GroupConfig, GroupCore, GroupId,
    Hdr, HistoryBuffer, MemberId, Seqno, Sequenced, SequencedKind, ViewId, WireMsg,
};
use amoeba_flip::{split_lens, split_payload, FlipAddress, FragKey, Reassembler};
use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

/// The sequencer's end-to-end stamping path: a singleton group's
/// `SendToGroup` sequences, stores, delivers and completes locally —
/// the modern-hardware analogue of the paper's 815 msg/s bound.
fn bench_sequencer_stamping(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequencer");
    for &size in &[0usize, 1024, 8000] {
        group.throughput(Throughput::Elements(1));
        group.bench_function(format!("stamp_{size}B"), |b| {
            let (mut core, _) = GroupCore::create(
                GroupId(1),
                FlipAddress::process(1),
                GroupConfig { history_cap: 1 << 20, ..GroupConfig::default() },
            )
            .expect("valid config");
            let payload = Bytes::from(vec![0u8; size]);
            b.iter(|| {
                let actions = core.send_to_group(payload.clone());
                black_box(actions);
            });
        });
    }
    group.finish();
}

fn sample_msg(payload_len: usize) -> WireMsg {
    WireMsg {
        hdr: Hdr {
            group: GroupId(1),
            view: ViewId(1, 0),
            sender: MemberId(2),
            last_delivered: Seqno(41),
            gc_floor: Seqno(40),
        },
        body: Body::BcastData {
            entry: Sequenced {
                seqno: Seqno(42),
                kind: SequencedKind::App {
                    origin: MemberId(2),
                    sender_seq: 7,
                    payload: Bytes::from(vec![0u8; payload_len]),
                },
            },
        },
    }
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    for &size in &[0usize, 1024, 8000] {
        let msg = sample_msg(size);
        let encoded = encode_wire_msg(&msg);
        group.throughput(Throughput::Bytes(encoded.len() as u64));
        group.bench_function(format!("encode_{size}B"), |b| {
            b.iter(|| black_box(encode_wire_msg(black_box(&msg))));
        });
        group.bench_function(format!("decode_{size}B"), |b| {
            b.iter(|| {
                let mut buf = encoded.clone();
                black_box(decode_wire_msg(&mut buf).expect("valid"));
            });
        });
        // The hot-path shape: a pooled encoder whose scratch is
        // reclaimed each iteration (steady state: zero allocations),
        // decoding straight off the shared frame (zero copies).
        group.bench_function(format!("roundtrip_{size}B"), |b| {
            let mut enc = FrameEncoder::new();
            b.iter(|| {
                let mut frame = enc.encode(black_box(&msg));
                black_box(decode_wire_msg(&mut frame).expect("valid"));
            });
        });
        // The live runtime's actual path: gather encoding ships a large
        // payload as a zero-copy tail segment, so the payload bytes are
        // never copied at all — cost is independent of payload size.
        group.bench_function(format!("roundtrip_gather_{size}B"), |b| {
            let mut enc = FrameEncoder::new();
            b.iter(|| {
                let frame = enc.encode_frame(black_box(&msg));
                black_box(amoeba_core::decode_wire_frame(frame).expect("valid"));
            });
        });
    }
    group.finish();
}

fn bench_history(c: &mut Criterion) {
    c.bench_function("history/insert_gc_window", |b| {
        let entry = |i: u64| Sequenced {
            seqno: Seqno(i),
            kind: SequencedKind::App {
                origin: MemberId(0),
                sender_seq: i,
                payload: Bytes::new(),
            },
        };
        b.iter(|| {
            let mut h = HistoryBuffer::new(128);
            for i in 1..=1_000u64 {
                h.insert(entry(i));
                if i % 64 == 0 {
                    h.gc(Seqno(i - 32));
                }
            }
            black_box(h.len());
        });
    });
}

fn bench_fragmentation(c: &mut Criterion) {
    c.bench_function("flip/split_8000B", |b| {
        b.iter(|| black_box(split_lens(black_box(8_060), 1_458)));
    });
    c.bench_function("flip/split_payload_8000B", |b| {
        // Zero-copy: six refcounted views of the parent allocation.
        let payload = bytes::Bytes::from(vec![0u8; 8_000]);
        b.iter(|| black_box(split_payload(black_box(&payload), 1_430)));
    });
    c.bench_function("flip/reassemble_6_frags", |b| {
        let key = FragKey { src: FlipAddress::process(1), msg_id: 9 };
        b.iter(|| {
            let mut r = Reassembler::new();
            for i in 0..6u16 {
                black_box(r.insert(key, i, 6, i, 0));
            }
        });
    });
}

criterion_group!(
    benches,
    bench_sequencer_stamping,
    bench_codec,
    bench_history,
    bench_fragmentation
);
criterion_main!(benches);
