//! Criterion benchmarks of the live threaded runtime: what the paper's
//! user-level-implementation argument (§5 lesson 2) buys on modern
//! hardware.
//!
//! `cargo bench -p amoeba-bench --bench live_runtime`

use amoeba_core::{GroupConfig, GroupEvent, GroupId};
use amoeba_runtime::{Amoeba, FaultPlan};
use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

/// Round-trip latency of one totally-ordered broadcast in a live
/// 2-member group (send on one member, observe delivery on the other).
fn bench_live_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("live");
    group.sample_size(30);
    for &size in &[0usize, 1024] {
        group.throughput(Throughput::Elements(1));
        group.bench_function(format!("broadcast_rtt_{size}B"), |b| {
            let amoeba = Amoeba::new(7, FaultPlan::reliable());
            let gid = GroupId(1);
            let a = amoeba.create_group(gid, GroupConfig::default()).expect("create");
            let bm = amoeba.join_group(gid, GroupConfig::default()).expect("join");
            let payload = Bytes::from(vec![0u8; size]);
            // Drain membership events first.
            while a.receive_timeout(std::time::Duration::from_millis(10)).is_ok() {}
            b.iter(|| {
                bm.send_to_group(payload.clone()).expect("send");
                loop {
                    match a.receive_from_group().expect("event") {
                        GroupEvent::Message { .. } => break,
                        _ => continue,
                    }
                }
            });
            black_box(&bm);
        });
    }
    group.finish();
}

/// Sustained blocking sends, one outstanding at a time — the paper's
/// throughput loop shape.
fn bench_live_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("live");
    group.sample_size(20);
    group.throughput(Throughput::Elements(100));
    group.bench_function("blocking_sends_x100", |b| {
        let amoeba = Amoeba::new(9, FaultPlan::reliable());
        let gid = GroupId(1);
        let a = amoeba.create_group(gid, GroupConfig::default()).expect("create");
        let bm = amoeba.join_group(gid, GroupConfig::default()).expect("join");
        let payload = Bytes::from_static(b"x");
        b.iter(|| {
            for _ in 0..100 {
                bm.send_to_group(payload.clone()).expect("send");
            }
        });
        black_box(&a);
    });
    group.finish();
}

criterion_group!(benches, bench_live_broadcast, bench_live_throughput);
criterion_main!(benches);
