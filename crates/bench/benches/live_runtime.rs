//! Criterion benchmarks of the live threaded runtime: what the paper's
//! user-level-implementation argument (§5 lesson 2) buys on modern
//! hardware.
//!
//! `cargo bench -p amoeba-bench --bench live_runtime`

use amoeba_core::{GroupConfig, GroupEvent, GroupId};
use amoeba_runtime::{Amoeba, FaultPlan};
use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

/// Round-trip latency of one totally-ordered broadcast in a live
/// 2-member group (send on one member, observe delivery on the other).
fn bench_live_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("live");
    group.sample_size(30);
    for &size in &[0usize, 1024] {
        group.throughput(Throughput::Elements(1));
        group.bench_function(format!("broadcast_rtt_{size}B"), |b| {
            let amoeba = Amoeba::new(7, FaultPlan::reliable());
            let gid = GroupId(1);
            let a = amoeba.create_group(gid, GroupConfig::default()).expect("create");
            let bm = amoeba.join_group(gid, GroupConfig::default()).expect("join");
            let payload = Bytes::from(vec![0u8; size]);
            // Drain membership events first.
            while a.receive_timeout(std::time::Duration::from_millis(10)).is_ok() {}
            b.iter(|| {
                bm.send_to_group(payload.clone()).expect("send");
                loop {
                    match a.receive_from_group().expect("event") {
                        GroupEvent::Message { .. } => break,
                        _ => continue,
                    }
                }
            });
            black_box(&bm);
        });
    }
    group.finish();
}

/// Sustained blocking sends, one outstanding at a time — the paper's
/// throughput loop shape.
fn bench_live_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("live");
    group.sample_size(20);
    group.throughput(Throughput::Elements(100));
    group.bench_function("blocking_sends_x100", |b| {
        let amoeba = Amoeba::new(9, FaultPlan::reliable());
        let gid = GroupId(1);
        let a = amoeba.create_group(gid, GroupConfig::default()).expect("create");
        let bm = amoeba.join_group(gid, GroupConfig::default()).expect("join");
        let payload = Bytes::from_static(b"x");
        b.iter(|| {
            for _ in 0..100 {
                bm.send_to_group(payload.clone()).expect("send");
            }
        });
        black_box(&a);
    });
    group.finish();
}

/// Pipelined sends with batching on: the send window keeps requests in
/// flight and the sequencer coalesces stamps into batch frames — the
/// live runtime's peak-throughput shape (DESIGN.md §6). The flush
/// timer is tightened to 1 µs (flush at the next driver-loop tick): the 200 µs preset is calibrated for
/// the paper's 10 Mbit/s model, three orders of magnitude slower than
/// this in-memory fabric, and a partial batch would otherwise idle the
/// whole window on every round.
fn bench_live_pipelined(c: &mut Criterion) {
    let mut group = c.benchmark_group("live");
    group.sample_size(20);
    group.throughput(Throughput::Elements(100));
    group.bench_function("pipelined_sends_x100", |b| {
        let amoeba = Amoeba::new(11, FaultPlan::reliable());
        let gid = GroupId(1);
        let cfg = GroupConfig {
            batch: amoeba_core::BatchPolicy::On { max_batch: 16, flush_us: 1 },
            send_window: 16,
            ..GroupConfig::default()
        };
        let a = amoeba.create_group(gid, cfg.clone()).expect("create");
        let bm = amoeba.join_group(gid, cfg).expect("join");
        let payload = Bytes::from_static(b"x");
        b.iter(|| {
            let results = bm.send_pipelined((0..100).map(|_| payload.clone()));
            assert!(results.iter().all(Result::is_ok));
        });
        black_box(&a);
    });
    group.finish();
}

criterion_group!(benches, bench_live_broadcast, bench_live_throughput, bench_live_pipelined);
criterion_main!(benches);
