//! `cargo bench -p amoeba-bench --bench paper_figures`
//!
//! Regenerates every table and figure of the paper at Quick scale and
//! prints paper-vs-measured rows. (The `figures` binary runs the same
//! harness with a `--quick`/full switch and per-figure selection.)

use amoeba_bench::experiments;
use amoeba_bench::report::Scale;

fn main() {
    // cargo passes --bench; no criterion here — the deliverable is the
    // printed reproduction itself.
    println!("Regenerating the ICDCS '96 evaluation (Quick scale)…\n");
    let mut worst: Option<(String, f64)> = None;
    for fig in experiments::all(Scale::Quick) {
        println!("{}", fig.render());
        for anchor in &fig.anchors {
            let drift = (anchor.ratio() - 1.0).abs();
            if worst.as_ref().map(|(_, w)| drift > *w).unwrap_or(true) {
                worst = Some((format!("{}: {}", fig.id, anchor.what), drift));
            }
        }
    }
    if let Some((what, drift)) = worst {
        println!("largest anchor drift: {what} ({:.0}% off the paper's value)", drift * 100.0);
    }
}
