//! Simulation-kernel scale benchmark: events per wall-clock second and
//! workload completion on the thousand-node worlds (the PR 7 kernel
//! refactor's yardstick, archived as the `"sim_scale"` key of the
//! BENCH json).
//!
//! ```text
//! sim_scale [--json <path>]
//! ```
//!
//! Three worlds, all on one simulated Ethernet:
//!
//! * `stress_1000` — one 1000-member group, staggered admission, four
//!   senders × 20 messages (the `scenarios/stress_1000.toml` shape).
//! * `multi_8x128` — 1024 nodes in eight 128-member groups, four
//!   senders × 20 messages per group.
//! * `storm_1000` — the pre-refactor harness's only option: all 999
//!   joins fired at the same instant. The join storm overruns the
//!   sequencer's 32-slot rx ring and the group never converges; the
//!   run is bounded at 30 simulated seconds and reported as a raw
//!   event-throughput yardstick, not a completing workload.
//!
//! With `--json <path>`: if the file exists (the `figures --json`
//! document), a `"sim_scale"` object is spliced in before the closing
//! brace; otherwise a fresh document is written. The baseline numbers
//! under `"baseline"` were measured offline on the pre-refactor
//! kernel (commit af20c6e, same container class): the storm was the
//! only 1000-node world it could express, and it stalled at 20/80
//! sends. The refactored kernel's claim is therefore completion, not
//! raw event rate: the staggered 1000-member workload finishes —
//! 80/80 sends, clean audit — in seconds of wall clock, where the
//! baseline never converged at all.

use std::time::Instant;

use amoeba_core::{GroupConfig, GroupId};
use amoeba_kernel::{CostModel, SimWorld, Workload};
use amoeba_sim::SimDuration;

/// Pre-refactor kernel (af20c6e), measured offline with this same
/// harness shape: storm formation, 4 × 20 sends, 30 s sim bound.
const BASELINE_STORM_EVENTS_PER_S: u64 = 2_134_886;
const BASELINE_STORM_SENDS_OK: u64 = 20;
const BASELINE_STORM_WALL_S: f64 = 5.59;

struct Run {
    name: &'static str,
    events: u64,
    /// Wall clock of the whole run — formation (where applicable) plus
    /// the bounded workload phase.
    wall_s: f64,
    events_per_s: u64,
    sends_ok: u64,
    sends_expected: u64,
    converged: bool,
}

fn staggered_world(nodes: usize, groups: usize) -> (SimWorld, f64) {
    let members = nodes / groups;
    let base_cfg = GroupConfig::scaled_for_world(members, groups);
    let cfg_for = |g: usize| {
        let mut c = base_cfg.clone();
        c.sync_interval_us += g as u64 * (c.sync_round_us / 4);
        c.status_stagger_us += 53 * g as u64;
        c
    };
    let mut w = SimWorld::new(CostModel::mc68030_ether10(), 1);
    for _ in 0..nodes {
        w.add_node();
    }
    let t = Instant::now();
    for g in 0..groups {
        w.create_group(g * members, GroupId(1 + g as u64), cfg_for(g));
    }
    let mut at = 0u64;
    for m in 1..members {
        for g in 0..groups {
            at += 1_000 + 17 * m as u64;
            w.join_group_at(g * members + m, GroupId(1 + g as u64), cfg_for(g), at);
        }
    }
    w.run_until_ready();
    (w, t.elapsed().as_secs_f64())
}

fn run_workload(
    mut w: SimWorld,
    formation_wall_s: f64,
    name: &'static str,
    groups: usize,
    senders: usize,
) -> Run {
    let nodes = w.sim.world.nodes.len();
    let members = nodes / groups;
    for g in 0..groups {
        for s in 0..senders {
            w.set_workload(g * members + s, Workload::Sender { size: 0, remaining: 20 });
        }
    }
    let t = Instant::now();
    w.kick();
    w.run_for(SimDuration::from_secs(30));
    let wall = formation_wall_s + t.elapsed().as_secs_f64();
    let events = w.sim.events_executed();
    let sends_ok = w.sim.world.metrics.sends_ok.get();
    let expected = (groups * senders) as u64 * 20;
    Run {
        name,
        events,
        wall_s: wall,
        events_per_s: (events as f64 / wall) as u64,
        sends_ok,
        sends_expected: expected,
        converged: sends_ok == expected,
    }
}

fn storm_1000() -> Run {
    // The pre-refactor shape: create, then every join at once.
    let cfg = GroupConfig::scaled_for(1000);
    let mut w = SimWorld::new(CostModel::mc68030_ether10(), 1);
    for _ in 0..1000 {
        w.add_node();
    }
    w.create_group(0, GroupId(1), cfg.clone());
    for m in 1..1000 {
        w.join_group(m, GroupId(1), cfg.clone());
    }
    for s in 0..4 {
        w.set_workload(s, Workload::Sender { size: 0, remaining: 20 });
    }
    let t = Instant::now();
    w.kick();
    w.run_for(SimDuration::from_secs(30));
    let wall = t.elapsed().as_secs_f64();
    let events = w.sim.events_executed();
    let sends_ok = w.sim.world.metrics.sends_ok.get();
    Run {
        name: "storm_1000",
        events,
        wall_s: wall,
        events_per_s: (events as f64 / wall) as u64,
        sends_ok,
        sends_expected: 80,
        converged: sends_ok == 80,
    }
}

fn json_run(r: &Run) -> String {
    format!(
        "{{\"events\": {}, \"wall_s\": {:.3}, \"events_per_s\": {}, \"sends_ok\": {}, \
         \"sends_expected\": {}, \"converged\": {}}}",
        r.events, r.wall_s, r.events_per_s, r.sends_ok, r.sends_expected, r.converged
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let mut runs = Vec::new();
    let t0 = Instant::now();
    let (w, formed) = staggered_world(1000, 1);
    runs.push(run_workload(w, formed, "stress_1000", 1, 4));
    let (w, formed) = staggered_world(1024, 8);
    runs.push(run_workload(w, formed, "multi_8x128", 8, 4));
    runs.push(storm_1000());

    for r in &runs {
        println!(
            "{:<12} {:>9} events  {:>6.2}s wall  {:>9} events/s  sends {}/{}{}",
            r.name,
            r.events,
            r.wall_s,
            r.events_per_s,
            r.sends_ok,
            r.sends_expected,
            if r.converged { "" } else { "  (STALLED)" }
        );
    }
    // The comparable number: delivered messages (sends × group size)
    // per wall second over the whole run, formation included. The
    // baseline storm never converged, so its figure is the ceiling it
    // reached before stalling.
    let stress = &runs[0];
    let delivered_per_wall_s = (stress.sends_ok * 1000) as f64 / stress.wall_s;
    let baseline_delivered_per_wall_s =
        (BASELINE_STORM_SENDS_OK * 1000) as f64 / BASELINE_STORM_WALL_S;
    let speedup = delivered_per_wall_s / baseline_delivered_per_wall_s;
    println!(
        "1000-node workload: {:.0} delivered msgs per wall second vs {:.0} on the \
         pre-refactor kernel (stalled) — {:.1}x",
        delivered_per_wall_s, baseline_delivered_per_wall_s, speedup
    );
    println!("total wall {:.2}s", t0.elapsed().as_secs_f64());

    if let Some(path) = json_path {
        let mut obj = String::from("{\n");
        for r in &runs {
            obj.push_str(&format!("    \"{}\": {},\n", r.name, json_run(r)));
        }
        obj.push_str(&format!(
            "    \"baseline\": {{\"commit\": \"af20c6e\", \"storm_events_per_s\": {}, \
             \"storm_sends_ok\": {}, \"storm_wall_s\": {:.2}, \"note\": \"pre-refactor kernel; \
             join storm was its only 1000-node formation and it never converged\"}},\n",
            BASELINE_STORM_EVENTS_PER_S, BASELINE_STORM_SENDS_OK, BASELINE_STORM_WALL_S
        ));
        obj.push_str(&format!(
            "    \"delivered_msgs_per_wall_s\": {:.0},\n    \
             \"baseline_delivered_msgs_per_wall_s\": {:.0},\n    \
             \"workload_speedup\": {:.1}\n  }}",
            delivered_per_wall_s, baseline_delivered_per_wall_s, speedup
        ));
        let doc = match std::fs::read_to_string(&path) {
            Ok(existing) => {
                let trimmed = existing.trim_end();
                let body = trimmed.strip_suffix('}').expect("existing json document");
                format!("{},\n  \"sim_scale\": {}\n}}\n", body.trim_end().trim_end_matches(','), obj)
            }
            Err(_) => format!("{{\n  \"sim_scale\": {}\n}}\n", obj),
        };
        std::fs::write(&path, doc).expect("write json");
        println!("wrote {path}");
    }
}
