//! Scale probe: how many simulated events per wall-clock second the
//! kernel sustains on large worlds (ROADMAP item 1's yardstick).
//!
//! ```text
//! scale_probe [nodes] [groups] [msgs-per-sender] [senders-per-group]
//! ```
//!
//! Builds `groups` disjoint groups of `nodes / groups` members on one
//! segment, runs formation, then `senders-per-group` members per group
//! stream `msgs` messages each. Prints formation and run wall-clock,
//! simulated time, executed events and events per wall-clock second.

use std::time::Instant;

use amoeba_core::{GroupConfig, GroupId};
use amoeba_kernel::{CostModel, SimWorld, Workload};
use amoeba_sim::SimDuration;

fn main() {
    let args: Vec<u64> = std::env::args().skip(1).filter_map(|a| a.parse().ok()).collect();
    let nodes = *args.first().unwrap_or(&1000) as usize;
    let groups = *args.get(1).unwrap_or(&1) as usize;
    let msgs = *args.get(2).unwrap_or(&20);
    let senders = *args.get(3).unwrap_or(&4) as usize;
    let run_secs = *args.get(4).unwrap_or(&600);
    let members = nodes / groups;

    let config = GroupConfig::scaled_for_world(members, groups);
    // De-phase the sequencers' periodic sync rounds: same-length
    // intervals armed at the same instant keep every group's round
    // aligned forever, and the aligned reply streams contend.
    let cfg_for = |g: usize| {
        let mut c = config.clone();
        c.sync_interval_us += g as u64 * (c.sync_round_us / 4);
        // Different stagger quanta keep overlapping rounds off a
        // shared microsecond grid (same-instant transmissions collide
        // chronically, not just once — the schedules re-align every
        // slot).
        c.status_stagger_us += 53 * g as u64;
        c
    };
    let mut w = SimWorld::new(CostModel::mc68030_ether10(), 42);
    for _ in 0..groups * members {
        w.add_node();
    }
    let t0 = Instant::now();
    // Joins staggered so the sequencer is never oversubscribed: a
    // simultaneous join storm overflows its 32-slot rx ring, and
    // admitting member m costs it ~1 ms fixed plus 4 µs per existing
    // member (multicast send-side), so the gap must widen as the
    // group grows.
    // The stagger is global across groups — they share one Ethernet,
    // and per-group schedules running in parallel saturate the wire.
    // Each slot covers the admission's costs, which grow with the
    // current membership m: ~1 ms fixed (sequencer CPU), 4 µs × m of
    // multicast send CPU for the join entry, and ~13 µs × m of wire
    // time for the JoinAck (it carries the 16-byte-per-member view).
    for g in 0..groups {
        w.create_group(g * members, GroupId(1 + g as u64), cfg_for(g));
    }
    let mut at = 0u64;
    for m in 1..members {
        for g in 0..groups {
            at += 1_000 + 17 * m as u64;
            w.join_group_at(g * members + m, GroupId(1 + g as u64), cfg_for(g), at);
        }
    }
    if std::env::var_os("AMOEBA_PROBE_DEBUG").is_some() {
        for _ in 0..60 {
            w.run_for(SimDuration::from_secs(1));
            let unready = w.sim.world.nodes.iter().filter(|n| !n.ready).count();
            let sizes: Vec<usize> = (0..groups)
                .map(|g| {
                    w.sim.world.nodes[g * members]
                        .core
                        .as_ref()
                        .map_or(0, |c| c.info().members.len())
                })
                .collect();
            let seq0 = w.sim.world.nodes[0].core.as_ref().map(|c| c.stats);
            println!(
                "t={} unready={} sizes={:?} g1-stats={:?}",
                w.now(),
                unready,
                sizes,
                seq0
            );
            if unready == 0 {
                break;
            }
        }
    } else {
        w.run_until_ready();
    }
    let formed = t0.elapsed();
    let formed_events = w.sim.events_executed();
    println!(
        "formation: {} nodes, {} groups in {:.2}s wall ({} events, sim t={})",
        groups * members,
        groups,
        formed.as_secs_f64(),
        formed_events,
        w.now()
    );

    for g in 0..groups {
        let base = g * members;
        for s in 0..senders.min(members) {
            w.set_workload(base + s, Workload::Sender { size: 0, remaining: msgs });
        }
    }
    let t1 = Instant::now();
    w.kick();
    w.run_for(SimDuration::from_secs(run_secs));
    let ran = t1.elapsed();
    let run_events = w.sim.events_executed() - formed_events;
    let expect = (groups * senders.min(members)) as u64 * msgs;
    println!(
        "workload: {}/{} sends ok ({} err), sim t={}, {:.2}s wall, {} events",
        w.sim.world.metrics.sends_ok.get(),
        expect,
        w.sim.world.metrics.sends_err.get(),
        w.now(),
        ran.as_secs_f64(),
        run_events
    );
    for g in 0..groups {
        let base = g * members;
        if let Some(core) = w.sim.world.nodes[base].core.as_ref() {
            let info = core.info();
            let s = core.stats;
            println!(
                "group {}: sequencer sees {} members; {} sync rounds, {} expels, \
                 {} retransmissions, {} flow-control drops, {} sequenced",
                1 + g,
                info.members.len(),
                s.sync_rounds,
                s.expels,
                s.retransmissions,
                s.flow_control_drops,
                s.sequenced
            );
        }
    }
    let (mut overflow, mut aborted, mut collisions) = (0u64, 0u64, 0u64);
    for h in w.sim.world.net.hosts() {
        overflow += h.nic.stats.rx_overflow;
        aborted += h.nic.stats.tx_aborted;
        collisions += h.nic.stats.collisions;
    }
    println!(
        "net: {} rx-ring overflows, {} tx aborts, {} collisions, wire {}",
        overflow,
        aborted,
        collisions,
        w.sim.world.net.medium.stats.frames
    );
    let total = t0.elapsed();
    println!(
        "events/s (workload): {:.0}   events/s (total): {:.0}   wall total {:.2}s",
        run_events as f64 / ran.as_secs_f64(),
        w.sim.events_executed() as f64 / total.as_secs_f64(),
        total.as_secs_f64()
    );
}
