//! UDP transport benchmark: blocking-send RTT and pipelined
//! throughput for a 3-member group over real 127.0.0.1 sockets
//! (DESIGN.md §12), archived as the `"udp_loopback"` key of
//! BENCH_10.json.
//!
//! ```text
//! udp_bench [--json <path>]
//! ```
//!
//! Two figures of merit, each measured twice — over `UdpNet` (real
//! datagrams through the kernel's network stack) and over the
//! in-memory `LiveNet` (crossbeam channels) — so the archived numbers
//! separate protocol cost from wire cost:
//!
//! * **RTT**: wall time of one blocking `SendToGroup` of 64 bytes — a
//!   request to the sequencer plus the ordered broadcast back, the
//!   paper's "group delay" shape. Median and p90 over 300 iterations
//!   after warmup.
//! * **Throughput**: 2000 × 1 KiB payloads streamed through
//!   `send_pipelined` with a 32-deep window, as messages/s and MB/s.
//!
//! With `--json <path>`: if the file exists, a `"udp_loopback"` object
//! is spliced in before the closing brace, replacing any previous
//! `"udp_loopback"` member; otherwise a fresh document is written.
//! Re-running against the same path is idempotent.

use std::sync::Arc;
use std::time::{Duration, Instant};

use amoeba_core::{GroupConfig, GroupEvent, GroupId};
use amoeba_net::{Transport, UdpConfig, UdpNet};
use amoeba_runtime::{Amoeba, FaultPlan, GroupHandle};
use bytes::Bytes;

const RTT_ITERS: usize = 300;
const RTT_WARMUP: usize = 50;
const RTT_SIZE: usize = 64;
const TPUT_MSGS: usize = 2000;
const TPUT_SIZE: usize = 1024;
const WINDOW: usize = 32;
const MEMBERS: usize = 3;

struct Numbers {
    rtt_median_us: f64,
    rtt_p90_us: f64,
    msgs_per_s: f64,
    mbytes_per_s: f64,
}

fn drain(handle: &GroupHandle, n: usize) {
    let mut seen = 0;
    while seen < n {
        let event = handle.receive_timeout(Duration::from_secs(30)).expect("bench delivery");
        if let GroupEvent::Message { .. } = event {
            seen += 1;
        }
    }
}

/// Forms a 3-member group on `amoeba` and measures both figures. The
/// non-sending members' event queues are drained in threads so the
/// numbers reflect a serving group, not one buffering unread history.
fn measure(amoeba: &Amoeba, gid: GroupId) -> Numbers {
    let config = GroupConfig { send_window: WINDOW, ..GroupConfig::default() };
    let a = amoeba.create_group(gid, config.clone()).expect("create");
    let b = amoeba.join_group(gid, config.clone()).expect("join b");
    let c = amoeba.join_group(gid, config).expect("join c");
    let total = RTT_WARMUP + RTT_ITERS + TPUT_MSGS;
    let (mut rtts_us, elapsed) = std::thread::scope(|s| {
        let da = s.spawn(|| drain(&a, total));
        let dc = s.spawn(|| drain(&c, total));

        // RTT: one blocking ordered broadcast at a time.
        let payload = Bytes::from(vec![0u8; RTT_SIZE]);
        for _ in 0..RTT_WARMUP {
            b.send_to_group(payload.clone()).expect("warmup send");
        }
        let rtts_us: Vec<f64> = (0..RTT_ITERS)
            .map(|_| {
                let t = Instant::now();
                b.send_to_group(payload.clone()).expect("rtt send");
                t.elapsed().as_secs_f64() * 1e6
            })
            .collect();

        // Throughput: a pipelined stream with the window kept full.
        let big = Bytes::from(vec![0u8; TPUT_SIZE]);
        let t = Instant::now();
        let results = b.send_pipelined((0..TPUT_MSGS).map(|_| big.clone()));
        let elapsed = t.elapsed().as_secs_f64();
        assert!(results.iter().all(|r| r.is_ok()), "pipelined send failed");

        drain(&b, total);
        da.join().expect("drain thread");
        dc.join().expect("drain thread");
        (rtts_us, elapsed)
    });
    rtts_us.sort_by(|x, y| x.total_cmp(y));

    Numbers {
        rtt_median_us: rtts_us[RTT_ITERS / 2],
        rtt_p90_us: rtts_us[RTT_ITERS * 9 / 10],
        msgs_per_s: TPUT_MSGS as f64 / elapsed,
        mbytes_per_s: (TPUT_MSGS * TPUT_SIZE) as f64 / elapsed / 1e6,
    }
}

/// Removes every `"udp_loopback"` member (with one adjacent comma
/// each) from a JSON document by brace matching — the documents this
/// tool consumes are the flat ones it and its siblings write.
fn strip_udp_loopback(doc: &str) -> String {
    let mut doc = doc.to_string();
    while let Some(key_at) = doc.find("\"udp_loopback\"") {
        let Some(open) = doc[key_at..].find('{').map(|i| key_at + i) else { return doc };
        let mut depth = 0usize;
        let mut close = None;
        for (i, b) in doc[open..].bytes().enumerate() {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(open + i + 1);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(mut end) = close else { return doc };
        let mut start = key_at;
        let before = doc[..start].trim_end();
        if before.ends_with(',') {
            start = before.len() - 1;
        } else if let Some(c) = doc[end..].find(',') {
            if doc[end..end + c].trim().is_empty() {
                end += c + 1;
            }
        }
        doc.replace_range(start..end, "");
    }
    doc
}

/// Splices `obj` in as the document's `"udp_loopback"` member,
/// replacing any existing one.
fn merge_doc(existing: &str, obj: &str) -> String {
    let stripped = strip_udp_loopback(existing);
    let body = stripped.trim_end().strip_suffix('}').expect("existing json document");
    let body = body.trim_end().trim_end_matches(',');
    let sep = if body.trim() == "{" { "" } else { "," };
    format!("{body}{sep}\n  \"udp_loopback\": {obj}\n}}\n")
}

fn render(n: &Numbers) -> String {
    format!(
        "{{\"members\": {MEMBERS}, \"rtt_median_us\": {:.1}, \"rtt_p90_us\": {:.1}, \
         \"pipelined_msgs_per_s\": {:.0}, \"pipelined_mbytes_per_s\": {:.2}}}",
        n.rtt_median_us, n.rtt_p90_us, n.msgs_per_s, n.mbytes_per_s
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path =
        args.iter().position(|a| a == "--json").and_then(|i| args.get(i + 1)).cloned();

    let udp = {
        let net: Arc<dyn Transport> = UdpNet::new(UdpConfig::default());
        measure(&Amoeba::over_transport(net, 1), GroupId(1))
    };
    let inmem = measure(&Amoeba::new(42, FaultPlan::reliable()), GroupId(2));

    for (label, n) in [("udp ", &udp), ("inmem", &inmem)] {
        println!(
            "{label}: rtt median {:>7.1} µs, p90 {:>7.1} µs; pipelined {:>7.0} msg/s \
             ({:.2} MB/s, {TPUT_SIZE} B payloads, window {WINDOW})",
            n.rtt_median_us, n.rtt_p90_us, n.msgs_per_s, n.mbytes_per_s
        );
    }

    if let Some(path) = json_path {
        let obj = format!(
            "{{\n    \"udp\": {},\n    \"inmem\": {}\n  }}",
            render(&udp),
            render(&inmem)
        );
        let doc = match std::fs::read_to_string(&path) {
            Ok(existing) => merge_doc(&existing, &obj),
            Err(_) => format!("{{\n  \"udp_loopback\": {}\n}}\n", obj),
        };
        std::fs::write(&path, doc).expect("write json");
        println!("wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OBJ: &str = "{\n    \"udp\": {\"rtt_median_us\": 1.0}\n  }";

    #[test]
    fn merge_replaces_instead_of_duplicating() {
        let first = merge_doc("{\n  \"other\": 1\n}\n", OBJ);
        assert_eq!(first.matches("\"udp_loopback\"").count(), 1);
        assert!(first.contains("\"other\": 1"));
        let second = merge_doc(&first, OBJ);
        assert_eq!(second, first);
    }

    #[test]
    fn merge_into_empty_document_is_idempotent() {
        let first = merge_doc("{}\n", OBJ);
        assert_eq!(first.matches("\"udp_loopback\"").count(), 1);
        assert_eq!(merge_doc(&first, OBJ), first);
    }
}
