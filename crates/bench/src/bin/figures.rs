//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures [--quick] [ids...]
//! ids: table3 fig1 fig3 fig4 fig5 fig6 fig7 fig8 rpc ablation batch_sweep
//! ```

use amoeba_bench::experiments;
use amoeba_bench::report::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    println!(
        "Amoeba group communication — reproduction of the ICDCS '96 evaluation ({:?} scale)\n",
        scale
    );
    let figures = if ids.is_empty() {
        experiments::all(scale)
    } else {
        ids.iter()
            .map(|id| {
                experiments::by_id(id, scale)
                    .unwrap_or_else(|| panic!("unknown experiment id {id}"))
            })
            .collect()
    };
    for fig in figures {
        println!("{}", fig.render());
    }
}
