//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures [--quick] [--json <path>] [--bench-jsonl <path>] [ids...]
//! ids: table3 fig1 fig3 fig4 fig5 fig6 fig7 fig8 rpc ablation batch_sweep
//! ```
//!
//! `--json <path>` additionally writes the whole run — every series
//! row, every paper-vs-measured anchor with its ratio, and per
//! experiment wall-clock — as one machine-readable JSON document (the
//! repo's `BENCH_3.json`; CI archives it so the perf trajectory is
//! tracked). `--bench-jsonl <path>` merges ns/iter lines captured from
//! the criterion-stub benches (see `AMOEBA_BENCH_JSON`) into that
//! document under `"benches"`.
//!
//! The run footer prints wall-clock per experiment and in total: the
//! simulator's own speed is itself a visible, regressable number.

use std::fmt::Write as _;
use std::time::Instant;

use amoeba_bench::experiments;
use amoeba_bench::report::{Figure, Scale};


fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let json_path = flag_value(&args, "--json");
    let bench_jsonl = flag_value(&args, "--bench-jsonl");
    let ids: Vec<&str> = {
        let mut ids = Vec::new();
        let mut skip = false;
        for a in &args {
            if skip {
                skip = false;
                continue;
            }
            match a.as_str() {
                "--json" | "--bench-jsonl" => skip = true,
                s if s.starts_with("--") => {}
                s => ids.push(s),
            }
        }
        if ids.is_empty() {
            experiments::IDS.to_vec()
        } else {
            ids
        }
    };

    println!(
        "Amoeba group communication — reproduction of the ICDCS '96 evaluation ({:?} scale)\n",
        scale
    );
    let run_start = Instant::now();
    let mut results: Vec<(&str, Figure, f64)> = Vec::new();
    for id in ids {
        let t = Instant::now();
        let fig = experiments::by_id(id, scale)
            .unwrap_or_else(|| panic!("unknown experiment id {id}"));
        let secs = t.elapsed().as_secs_f64();
        println!("{}", fig.render());
        results.push((id, fig, secs));
    }
    let total = run_start.elapsed().as_secs_f64();

    println!("— wall clock ({:?} scale) —", scale);
    for (id, _, secs) in &results {
        println!("  {id:<12} {secs:>9.2} s");
    }
    println!("  {:<12} {total:>9.2} s", "total");

    if let Some(path) = json_path {
        let doc = render_json(scale, &results, total, bench_jsonl.as_deref());
        std::fs::write(&path, doc).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("\nwrote {path}");
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn esc(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => vec![' '],
            c => vec![c],
        })
        .collect()
}

/// Hand-rolled JSON (the workspace is offline; no serde_json). Every
/// string that reaches here is ASCII from our own tables, escaped
/// anyway out of caution.
fn render_json(
    scale: Scale,
    results: &[(&str, Figure, f64)],
    total_secs: f64,
    bench_jsonl: Option<&str>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"scale\": \"{:?}\",", scale);
    let _ = writeln!(out, "  \"total_wall_clock_s\": {total_secs:.2},");
    out.push_str("  \"experiments\": [\n");
    for (i, (id, fig, secs)) in results.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"id\": \"{}\",", esc(id));
        let _ = writeln!(out, "      \"title\": \"{}\",", esc(fig.title));
        let _ = writeln!(out, "      \"wall_clock_s\": {secs:.2},");
        out.push_str("      \"anchors\": [\n");
        for (j, a) in fig.anchors.iter().enumerate() {
            let _ = write!(
                out,
                "        {{\"what\": \"{}\", \"paper\": {}, \"measured\": {:.3}, \"unit\": \"{}\", \"ratio\": {:.4}}}",
                esc(&a.what),
                a.paper,
                a.measured,
                esc(a.unit),
                a.ratio()
            );
            out.push_str(if j + 1 < fig.anchors.len() { ",\n" } else { "\n" });
        }
        out.push_str("      ],\n");
        out.push_str("      \"series\": [\n");
        for (j, s) in fig.series.iter().enumerate() {
            let pts: Vec<String> =
                s.points().iter().map(|(x, y)| format!("[{x}, {y:.3}]")).collect();
            let _ = write!(
                out,
                "        {{\"label\": \"{}\", \"points\": [{}]}}",
                esc(s.label()),
                pts.join(", ")
            );
            out.push_str(if j + 1 < fig.series.len() { ",\n" } else { "\n" });
        }
        out.push_str("      ]\n");
        out.push_str("    }");
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"benches\": [\n");
    let bench_lines: Vec<String> = bench_jsonl
        .and_then(|p| std::fs::read_to_string(p).ok())
        .map(|s| s.lines().filter(|l| !l.trim().is_empty()).map(str::to_owned).collect())
        .unwrap_or_default();
    for (i, line) in bench_lines.iter().enumerate() {
        out.push_str("    ");
        out.push_str(line.trim());
        out.push_str(if i + 1 < bench_lines.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}
