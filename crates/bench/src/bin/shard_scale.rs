//! Sharding scale benchmark: aggregate key-ops/s of the sharded
//! serving layer (DESIGN.md §11) as the shard count grows on one
//! simulated Ethernet, archived as the `"shard_scale"` key of
//! BENCH_9.json.
//!
//! ```text
//! shard_scale [--json <path>]
//! ```
//!
//! One world per shard count (1, 2, 4, 8 data groups of 3 replicas
//! each, one 3-member meta group), identical routed workload: 960
//! writes over 256 keys with up to 64 in flight. The figure of merit
//! is acked writes per *simulated* second from workload start to
//! drain — each shard is an independent total order with its own
//! sequencer and gateway, so the aggregate rate should scale until
//! the shared 10 Mbit/s wire saturates. Sequencer batching is on
//! (`BatchPolicy::On`), which is what keeps the eight-sequencer world
//! inside the wire's budget (DESIGN.md §6).
//!
//! With `--json <path>`: if the file exists, a `"shard_scale"` object
//! is spliced in before the closing brace; otherwise a fresh document
//! is written.

use std::time::Instant;

use amoeba_core::BatchPolicy;
use amoeba_shard::{Cluster, ShardSpec, SimCluster};

const OPS: u64 = 960;
const KEYS: u64 = 256;
const WINDOW: usize = 64;
const MEMBERS: usize = 3;

struct Run {
    shards: usize,
    /// Simulated time from workload start to the last ack, µs.
    sim_us: u64,
    /// Acked writes per simulated second.
    ops_per_sim_s: f64,
    /// Wall clock of the whole run, formation included.
    wall_s: f64,
    retries: u64,
}

fn run_world(shards: usize) -> Run {
    let t0 = Instant::now();
    let mut spec = ShardSpec::new(90 + shards as u64, shards, MEMBERS);
    // Batch the sequencers' accepts: unbatched small-payload PB
    // saturates the 10 Mbit/s wire near 4000 ops/s aggregate, which
    // would flatten the curve for reasons that have nothing to do
    // with sharding.
    let groups = shards + 1;
    let mut data = amoeba_core::GroupConfig::scaled_for_world(MEMBERS, groups);
    data.batch = BatchPolicy::On { max_batch: 8, flush_us: 200 };
    spec.data_config = Some(data);
    let mut c = SimCluster::new(spec);

    let started_us = c.now_us();
    let mut submitted = 0u64;
    let mut cycles = 0u64;
    while c.router().stats().puts_acked < OPS {
        while submitted < OPS && c.router().in_flight() < WINDOW {
            let key = format!("k{}", submitted % KEYS);
            c.router().put(&key, &format!("v{submitted}"));
            submitted += 1;
        }
        c.advance();
        cycles += 1;
        assert!(cycles < 600_000, "{shards}-shard workload never drained");
    }
    let sim_us = c.now_us() - started_us;
    let retries = c.router().stats().retries;
    assert!(c.halt(), "{shards}-shard cluster did not halt");
    Run {
        shards,
        sim_us,
        ops_per_sim_s: OPS as f64 / (sim_us as f64 / 1_000_000.0),
        wall_s: t0.elapsed().as_secs_f64(),
        retries,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let runs: Vec<Run> = [1, 2, 4, 8].into_iter().map(run_world).collect();
    for r in &runs {
        println!(
            "{} shard(s): {:>7.0} key-ops/s  (sim {:>6.3} s for {OPS} ops, {} retries, \
             {:>5.2} s wall)",
            r.shards,
            r.ops_per_sim_s,
            r.sim_us as f64 / 1_000_000.0,
            r.retries,
            r.wall_s
        );
    }
    let scaling = runs.last().unwrap().ops_per_sim_s / runs[0].ops_per_sim_s;
    println!("1 → 8 shard scaling: {scaling:.2}x aggregate key-ops/s");

    if let Some(path) = json_path {
        let mut obj = String::from("{\n");
        for r in &runs {
            obj.push_str(&format!(
                "    \"shards_{}\": {{\"ops\": {OPS}, \"sim_us\": {}, \"ops_per_sim_s\": {:.0}, \
                 \"retries\": {}, \"wall_s\": {:.3}}},\n",
                r.shards, r.sim_us, r.ops_per_sim_s, r.retries, r.wall_s
            ));
        }
        obj.push_str(&format!("    \"scaling_1_to_8\": {scaling:.2}\n  }}"));
        let doc = match std::fs::read_to_string(&path) {
            Ok(existing) => {
                let trimmed = existing.trim_end();
                let body = trimmed.strip_suffix('}').expect("existing json document");
                format!(
                    "{},\n  \"shard_scale\": {}\n}}\n",
                    body.trim_end().trim_end_matches(','),
                    obj
                )
            }
            Err(_) => format!("{{\n  \"shard_scale\": {}\n}}\n", obj),
        };
        std::fs::write(&path, doc).expect("write json");
        println!("wrote {path}");
    }
}
