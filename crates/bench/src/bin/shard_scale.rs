//! Sharding scale benchmark: aggregate key-ops/s of the sharded
//! serving layer (DESIGN.md §11) as the shard count grows on one
//! simulated Ethernet, archived as the `"shard_scale"` key of
//! BENCH_9.json.
//!
//! ```text
//! shard_scale [--json <path>]
//! ```
//!
//! One world per shard count (1, 2, 4, 8 data groups of 3 replicas
//! each, one 3-member meta group), identical routed workload: 960
//! writes over 256 keys with up to 64 in flight. The figure of merit
//! is acked writes per *simulated* second from workload start to
//! drain — each shard is an independent total order with its own
//! sequencer and gateway, so the aggregate rate should scale until
//! the shared 10 Mbit/s wire saturates. Sequencer batching is on
//! (`BatchPolicy::On`), which is what keeps the eight-sequencer world
//! inside the wire's budget (DESIGN.md §6).
//!
//! With `--json <path>`: if the file exists, a `"shard_scale"` object
//! is spliced in before the closing brace, replacing any previous
//! `"shard_scale"` member; otherwise a fresh document is written.
//! Re-running against the same path is idempotent.

use std::time::Instant;

use amoeba_core::BatchPolicy;
use amoeba_shard::{Cluster, ShardSpec, SimCluster};

const OPS: u64 = 960;
const KEYS: u64 = 256;
const WINDOW: usize = 64;
const MEMBERS: usize = 3;

struct Run {
    shards: usize,
    /// Simulated time from workload start to the last ack, µs.
    sim_us: u64,
    /// Acked writes per simulated second.
    ops_per_sim_s: f64,
    /// Wall clock of the whole run, formation included.
    wall_s: f64,
    retries: u64,
}

fn run_world(shards: usize) -> Run {
    let t0 = Instant::now();
    let mut spec = ShardSpec::new(90 + shards as u64, shards, MEMBERS);
    // Batch the sequencers' accepts: unbatched small-payload PB
    // saturates the 10 Mbit/s wire near 4000 ops/s aggregate, which
    // would flatten the curve for reasons that have nothing to do
    // with sharding.
    let groups = shards + 1;
    let mut data = amoeba_core::GroupConfig::scaled_for_world(MEMBERS, groups);
    data.batch = BatchPolicy::On { max_batch: 8, flush_us: 200 };
    spec.data_config = Some(data);
    let mut c = SimCluster::new(spec);

    let started_us = c.now_us();
    let mut submitted = 0u64;
    let mut cycles = 0u64;
    while c.router().stats().puts_acked < OPS {
        while submitted < OPS && c.router().in_flight() < WINDOW {
            let key = format!("k{}", submitted % KEYS);
            c.router().put(&key, &format!("v{submitted}"));
            submitted += 1;
        }
        c.advance();
        cycles += 1;
        assert!(cycles < 600_000, "{shards}-shard workload never drained");
    }
    let sim_us = c.now_us() - started_us;
    let retries = c.router().stats().retries;
    assert!(c.halt(), "{shards}-shard cluster did not halt");
    Run {
        shards,
        sim_us,
        ops_per_sim_s: OPS as f64 / (sim_us as f64 / 1_000_000.0),
        wall_s: t0.elapsed().as_secs_f64(),
        retries,
    }
}

/// Removes every `"shard_scale": { ... }` member (with one adjacent
/// comma each) from a JSON document by brace matching — the documents
/// this tool consumes are the flat ones it and its siblings write, so
/// no string escapes to worry about.
fn strip_shard_scale(doc: &str) -> String {
    let mut doc = doc.to_string();
    while let Some(key_at) = doc.find("\"shard_scale\"") {
        let Some(open) = doc[key_at..].find('{').map(|i| key_at + i) else { return doc };
        let mut depth = 0usize;
        let mut close = None;
        for (i, b) in doc[open..].bytes().enumerate() {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(open + i + 1);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(mut end) = close else { return doc };
        let mut start = key_at;
        let before = doc[..start].trim_end();
        if before.ends_with(',') {
            start = before.len() - 1;
        } else if let Some(c) = doc[end..].find(',') {
            if doc[end..end + c].trim().is_empty() {
                end += c + 1;
            }
        }
        doc.replace_range(start..end, "");
    }
    doc
}

/// Splices `obj` in as the document's `"shard_scale"` member,
/// replacing any existing one.
fn merge_doc(existing: &str, obj: &str) -> String {
    let stripped = strip_shard_scale(existing);
    let body = stripped.trim_end().strip_suffix('}').expect("existing json document");
    let body = body.trim_end().trim_end_matches(',');
    let sep = if body.trim() == "{" { "" } else { "," };
    format!("{body}{sep}\n  \"shard_scale\": {obj}\n}}\n")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let runs: Vec<Run> = [1, 2, 4, 8].into_iter().map(run_world).collect();
    for r in &runs {
        println!(
            "{} shard(s): {:>7.0} key-ops/s  (sim {:>6.3} s for {OPS} ops, {} retries, \
             {:>5.2} s wall)",
            r.shards,
            r.ops_per_sim_s,
            r.sim_us as f64 / 1_000_000.0,
            r.retries,
            r.wall_s
        );
    }
    let scaling = runs.last().unwrap().ops_per_sim_s / runs[0].ops_per_sim_s;
    println!("1 → 8 shard scaling: {scaling:.2}x aggregate key-ops/s");

    if let Some(path) = json_path {
        let mut obj = String::from("{\n");
        for r in &runs {
            obj.push_str(&format!(
                "    \"shards_{}\": {{\"ops\": {OPS}, \"sim_us\": {}, \"ops_per_sim_s\": {:.0}, \
                 \"retries\": {}, \"wall_s\": {:.3}}},\n",
                r.shards, r.sim_us, r.ops_per_sim_s, r.retries, r.wall_s
            ));
        }
        obj.push_str(&format!("    \"scaling_1_to_8\": {scaling:.2}\n  }}"));
        let doc = match std::fs::read_to_string(&path) {
            Ok(existing) => merge_doc(&existing, &obj),
            Err(_) => format!("{{\n  \"shard_scale\": {}\n}}\n", obj),
        };
        std::fs::write(&path, doc).expect("write json");
        println!("wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OBJ: &str = "{\n    \"scaling_1_to_8\": 6.63\n  }";

    #[test]
    fn merge_replaces_instead_of_duplicating() {
        let first = merge_doc("{\n  \"other\": 1\n}\n", OBJ);
        assert_eq!(first.matches("\"shard_scale\"").count(), 1);
        assert!(first.contains("\"other\": 1"));
        let second = merge_doc(&first, OBJ);
        assert_eq!(second, first);
    }

    #[test]
    fn merge_into_sole_key_document_is_idempotent() {
        let first = merge_doc("{}\n", OBJ);
        assert_eq!(first.matches("\"shard_scale\"").count(), 1);
        assert_eq!(merge_doc(&first, OBJ), first);
    }

    #[test]
    fn strip_repairs_a_duplicated_document() {
        let dup = format!(
            "{{\n  \"shard_scale\": {OBJ},\n  \"shard_scale\": {OBJ}\n}}\n"
        );
        let merged = merge_doc(&dup, OBJ);
        assert_eq!(merged.matches("\"shard_scale\"").count(), 1);
        assert_eq!(merge_doc(&merged, OBJ), merged);
    }
}
