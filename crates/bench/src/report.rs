//! Table formatting and paper-versus-measured reporting.

use amoeba_sim::Series;

/// How long each experiment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-sized: tens of sends per point, second-scale windows.
    Quick,
    /// Paper-sized sweeps (the paper used 10 000 repetitions; `Full`
    /// uses enough to stabilize means to well under 1 %).
    Full,
}

impl Scale {
    /// Repetitions for a delay measurement point.
    pub fn sends(self) -> u64 {
        match self {
            Scale::Quick => 60,
            Scale::Full => 1_000,
        }
    }

    /// Warm-up before a throughput window, µs.
    pub fn warmup_us(self) -> u64 {
        match self {
            Scale::Quick => 500_000,
            Scale::Full => 2_000_000,
        }
    }

    /// Throughput measurement window, µs.
    pub fn window_us(self) -> u64 {
        match self {
            Scale::Quick => 2_000_000,
            Scale::Full => 8_000_000,
        }
    }
}

/// One regenerated figure or table: labelled series over a shared
/// x-axis, plus paper-anchor comparison lines.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Identifier ("fig1", "table3", …).
    pub id: &'static str,
    /// Human title (matches the paper's caption).
    pub title: &'static str,
    /// The x-axis label.
    pub x_label: &'static str,
    /// The y-axis label.
    pub y_label: &'static str,
    /// One curve per series.
    pub series: Vec<Series>,
    /// "paper said X, we measured Y" comparison lines.
    pub anchors: Vec<Anchor>,
}

/// A headline number from the paper next to our measurement.
#[derive(Debug, Clone)]
pub struct Anchor {
    /// What is being compared.
    pub what: String,
    /// The paper's reported value.
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
    /// Unit for display.
    pub unit: &'static str,
}

impl Anchor {
    /// Ratio of measured to paper value.
    pub fn ratio(&self) -> f64 {
        if self.paper == 0.0 {
            return f64::NAN;
        }
        self.measured / self.paper
    }
}

impl Figure {
    /// Renders the figure as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        if !self.series.is_empty() {
            // Collect the x values of the widest series.
            let xs: Vec<f64> = self
                .series
                .iter()
                .max_by_key(|s| s.points().len())
                .map(|s| s.points().iter().map(|(x, _)| *x).collect())
                .unwrap_or_default();
            out.push_str(&format!("{:>12}", self.x_label));
            for s in &self.series {
                out.push_str(&format!(" {:>14}", s.label()));
            }
            out.push_str(&format!("   ({})\n", self.y_label));
            for x in xs {
                out.push_str(&format!("{x:>12.0}"));
                for s in &self.series {
                    match s.y_at(x) {
                        Some(y) => out.push_str(&format!(" {y:>14.1}")),
                        None => out.push_str(&format!(" {:>14}", "-")),
                    }
                }
                out.push('\n');
            }
        }
        if !self.anchors.is_empty() {
            out.push_str("  paper vs measured:\n");
            for a in &self.anchors {
                out.push_str(&format!(
                    "    {:<52} paper {:>10.1} {:<7} measured {:>10.1} {:<7} (x{:.2})\n",
                    a.what,
                    a.paper,
                    a.unit,
                    a.measured,
                    a.unit,
                    a.ratio()
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_series_and_anchors() {
        let mut s = Series::new("0 bytes");
        s.push(2.0, 2.7);
        s.push(30.0, 2.8);
        let fig = Figure {
            id: "figX",
            title: "test",
            x_label: "members",
            y_label: "ms",
            series: vec![s],
            anchors: vec![Anchor {
                what: "null delay".into(),
                paper: 2.7,
                measured: 2.71,
                unit: "ms",
            }],
        };
        let text = fig.render();
        assert!(text.contains("figX"));
        assert!(text.contains("0 bytes"));
        assert!(text.contains("null delay"));
        assert!(text.contains("x1.00"));
    }

    #[test]
    fn scale_knobs_are_ordered() {
        assert!(Scale::Quick.sends() < Scale::Full.sends());
        assert!(Scale::Quick.window_us() < Scale::Full.window_us());
    }

    #[test]
    fn anchor_ratio() {
        let a = Anchor { what: "x".into(), paper: 2.0, measured: 3.0, unit: "ms" };
        assert!((a.ratio() - 1.5).abs() < 1e-9);
    }
}
