//! Figure 6: disjoint groups sharing one Ethernet.

use amoeba_core::{GroupConfig, GroupId, Method};
use amoeba_kernel::{CostModel, SimWorld, Workload};
use amoeba_sim::{SimDuration, Series};

use crate::report::{Anchor, Figure, Scale};

/// Builds `groups` disjoint groups of `members` each (every member on
/// its own host, all hosts on one segment), everyone sending 0-byte
/// messages continuously; returns (aggregate broadcasts/s, utilization).
fn parallel_groups_rate(groups: usize, members: usize, scale: Scale, seed: u64) -> (f64, f64) {
    let config = GroupConfig { method: Method::Pb, ..GroupConfig::default() };
    let mut w = SimWorld::new(CostModel::mc68030_ether10(), seed);
    for _ in 0..groups * members {
        w.add_node();
    }
    for g in 0..groups {
        let gid = GroupId(1 + g as u64);
        let base = g * members;
        w.create_group(base, gid, config.clone());
        for m in 1..members {
            w.join_group(base + m, gid, config.clone());
        }
    }
    w.run_until_ready();
    for n in 0..groups * members {
        w.set_workload(n, Workload::Sender { size: 0, remaining: u64::MAX });
    }
    w.kick();
    w.run_for(SimDuration::from_micros(scale.warmup_us()));
    let before = w.snapshot_sends();
    let util_before = w.sim.world.net.medium.stats.busy_us;
    w.run_for(SimDuration::from_micros(scale.window_us()));
    let after = w.snapshot_sends();
    let util_after = w.sim.world.net.medium.stats.busy_us;
    let secs = scale.window_us() as f64 / 1_000_000.0;
    let rate = (after - before) as f64 / secs;
    let util = (util_after - util_before) as f64 / scale.window_us() as f64;
    (rate, util)
}

/// Figure 6: "Throughput for groups of 2, 4, and 8 members running in
/// parallel and using the PB method."
///
/// Paper anchors: the aggregate maximum is 3175 broadcasts/s with 5
/// groups of 2; beyond that Ethernet collisions erode it; utilization
/// at the peak is ≈ 61 % — "as much as can be expected from an Ethernet
/// with multiple uncoordinated senders". The paper could not measure
/// more groups of 8 for lack of machines; we sweep what they swept.
pub fn fig6_parallel_groups(scale: Scale) -> Figure {
    let mut series = Vec::new();
    let mut peak = 0.0f64;
    let mut util_at_peak = 0.0f64;
    for &members in &[2usize, 4, 8] {
        let max_groups = match members {
            2 => 7,
            4 => 7,
            _ => 3, // the paper ran out of machines for 8-member groups too
        };
        let mut s = Series::new(format!("{members} members"));
        for groups in 1..=max_groups {
            let (rate, util) =
                parallel_groups_rate(groups, members, scale, 600 + (members * 10 + groups) as u64);
            s.push(groups as f64, rate);
            if rate > peak {
                peak = rate;
                util_at_peak = util;
            }
        }
        series.push(s);
    }
    Figure {
        id: "fig6",
        title: "Aggregate throughput of disjoint parallel groups (PB, 0-byte)",
        x_label: "groups",
        y_label: "broadcasts/second (all groups)",
        anchors: vec![
            Anchor {
                what: "peak aggregate throughput".into(),
                paper: 3175.0,
                measured: peak,
                unit: "msg/s",
            },
            Anchor {
                what: "Ethernet utilization at peak".into(),
                paper: 0.61,
                measured: util_at_peak,
                unit: "frac",
            },
        ],
        series,
    }
}
