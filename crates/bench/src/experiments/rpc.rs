//! The RPC baseline of §4: "Compared to the Amoeba RPC on the same
//! architecture, the group communication is 0.1 msec faster."

use amoeba_core::Method;
use amoeba_kernel::{CostModel, SimWorld, Workload};
use amoeba_sim::{SimDuration, Series};

use super::measure_delay;
use crate::report::{Anchor, Figure, Scale};

/// Measures mean null-RPC delay (µs) between two hosts.
fn measure_rpc_delay(size: u32, scale: Scale, seed: u64) -> f64 {
    let mut w = SimWorld::new(CostModel::mc68030_ether10(), seed);
    let client = w.add_node();
    let server = w.add_node();
    let server_addr = w.sim.world.nodes[server].addr;
    w.set_workload(server, Workload::RpcEcho);
    let calls = scale.sends();
    w.set_workload(client, Workload::RpcPinger { size, remaining: calls, server: server_addr });
    w.kick();
    w.run_for(SimDuration::from_micros(calls * 100_000 + 1_000_000));
    assert_eq!(w.sim.world.nodes[client].stats.rpcs_ok, calls, "all RPCs must complete");
    w.sim.world.metrics.rpc_delay_us.median()
}

/// Group send vs RPC: the paper's comparison (group 2, null messages).
pub fn rpc_baseline(scale: Scale) -> Figure {
    let sizes: [u32; 3] = [0, 1024, 4096];
    let mut rpc_series = Series::new("RPC");
    let mut group_series = Series::new("SendToGroup");
    for &size in &sizes {
        rpc_series.push(f64::from(size), measure_rpc_delay(size, scale, 900) / 1_000.0);
        group_series.push(
            f64::from(size),
            measure_delay(2, size, Method::Pb, 0, scale, 901) / 1_000.0,
        );
    }
    let rpc0 = rpc_series.y_at(0.0).expect("null rpc");
    let grp0 = group_series.y_at(0.0).expect("null group send");
    Figure {
        id: "rpc",
        title: "Null group send vs null RPC (the paper's point-to-point baseline)",
        x_label: "bytes",
        y_label: "ms per operation",
        series: vec![group_series, rpc_series],
        anchors: vec![
            Anchor { what: "null RPC delay".into(), paper: 2.8, measured: rpc0, unit: "ms" },
            Anchor {
                what: "group send advantage over RPC".into(),
                paper: 0.1,
                measured: rpc0 - grp0,
                unit: "ms",
            },
        ],
    }
}
