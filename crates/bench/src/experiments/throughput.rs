//! Throughput experiments: Figures 4 (PB), 5 (BB) and 8 (resilience).

use amoeba_core::Method;
use amoeba_sim::Series;

use super::{measure_throughput, SIZES};
use crate::report::{Anchor, Figure, Scale};

/// Sender counts swept on the x-axis ("the group size is equal to the
/// number of senders", paper x-axis 0–16).
const SENDER_SWEEP: [usize; 6] = [2, 4, 6, 8, 12, 16];

fn throughput_sweep(method: Method, scale: Scale, seed: u64) -> Vec<Series> {
    SIZES
        .iter()
        .map(|&size| {
            let mut s = Series::new(format!("{size} bytes"));
            for &senders in &SENDER_SWEEP {
                let rate =
                    measure_throughput(senders, size, method, 0, scale, seed + senders as u64);
                s.push(senders as f64, rate);
            }
            s
        })
        .collect()
}

/// Figure 4: "Throughput for the PB Method. The group size is equal to
/// the number of senders."
///
/// Paper anchors: the maximum is 815 zero-byte messages per second,
/// bounded by the sequencer's ≈ 800 µs of per-message processing
/// (theoretical 1250/s, unreached because the sequencer's own member
/// must also be scheduled); throughput *collapses* for ≥ 4-Kbyte
/// messages with many senders because the Lance's 32-packet ring
/// overflows and retransmission timers take over.
pub fn fig4_throughput_pb(scale: Scale) -> Figure {
    let series = throughput_sweep(Method::Pb, scale, 400);
    let peak0 = series[0].y_max().unwrap_or(0.0);
    let big_progression: Vec<f64> = series[3]
        .points()
        .iter()
        .map(|&(_, y)| y)
        .collect();
    let collapse =
        big_progression.last().copied().unwrap_or(0.0) < big_progression[1].max(1.0);
    Figure {
        id: "fig4",
        title: "Throughput for the PB method (group size = #senders)",
        x_label: "senders",
        y_label: "broadcasts/second",
        anchors: vec![
            Anchor { what: "peak 0-byte throughput".into(), paper: 815.0, measured: peak0, unit: "msg/s" },
            Anchor {
                what: "4-KB collapse under many senders (1 = collapsed)".into(),
                paper: 1.0,
                measured: f64::from(u8::from(collapse)),
                unit: "bool",
            },
        ],
        series,
    }
}

/// Figure 5: "Throughput for the BB Method."
pub fn fig5_throughput_bb(scale: Scale) -> Figure {
    let series = throughput_sweep(Method::Bb, scale, 500);
    let peak0 = series[0].y_max().unwrap_or(0.0);
    Figure {
        id: "fig5",
        title: "Throughput for the BB method (group size = #senders)",
        x_label: "senders",
        y_label: "broadcasts/second",
        anchors: vec![Anchor {
            what: "peak 0-byte throughput (≈ PB: sequencer-bound)".into(),
            paper: 815.0,
            measured: peak0,
            unit: "msg/s",
        }],
        series,
    }
}

/// Figure 8: throughput under resilience (PB, group size = #senders).
///
/// The paper's caption repeats Figure 4's, but in context the final
/// experiment reports throughput as r grows: each broadcast now costs
/// 3 + r messages, most of them hitting the sequencer, so throughput
/// falls accordingly.
pub fn fig8_throughput_resilience(scale: Scale) -> Figure {
    let rs: [u32; 5] = [0, 1, 2, 4, 8];
    let sizes: [u32; 2] = [0, 1024];
    let mut series = Vec::new();
    for &size in &sizes {
        let mut s = Series::new(format!("{size} bytes"));
        for &r in &rs {
            let senders = (r as usize + 1).max(2);
            let rate =
                measure_throughput(senders, size, Method::Pb, r, scale, 800 + u64::from(r));
            s.push(f64::from(r), rate);
        }
        series.push(s);
    }
    let t0 = series[0].y_at(0.0).unwrap_or(0.0);
    let t8 = series[0].y_at(8.0).unwrap_or(0.0);
    Figure {
        id: "fig8",
        title: "Throughput under resilience r (PB, group size = max(r+1, 2))",
        x_label: "resilience r",
        y_label: "broadcasts/second",
        anchors: vec![Anchor {
            what: "throughput declines with r (r=8 / r=0)".into(),
            paper: 0.35, // ~3+r messages per broadcast at the sequencer
            measured: if t0 > 0.0 { t8 / t0 } else { 0.0 },
            unit: "ratio",
        }],
        series,
    }
}
