//! Table 3 / Figure 2: the per-layer critical path of one null
//! SendToGroup (group of 2, PB method).

use amoeba_core::Method;
use amoeba_kernel::CostModel;
use amoeba_net::NetConfig;
use amoeba_sim::Series;

use super::measure_delay;
use crate::report::{Anchor, Figure, Scale};

/// Table 3: "The time spent in the critical path of each layer", with
/// Figure 2's event sequence (U1 G1 F1 E1 → wire → E2a F2a G2 F2b E2b →
/// wire → E3 F3 G3 U3). The paper reports the total as 2740 µs with the
/// group layer costing 740 µs; we print the calibrated model's path and
/// the end-to-end delay actually measured in simulation.
pub fn table3_breakdown(scale: Scale) -> Figure {
    let c = CostModel::mc68030_ether10();
    let net = NetConfig::ether_10mbps();
    // A null message on the wire: 16 (link) + 40 (FLIP) + 28 (group) +
    // 32 (user header) = 116 bytes.
    let wire = net.wire_time(116).as_micros();

    let sender_user = c.user_send_entry; // U1
    let sender_group = c.group_send; // G1
    let sender_flip = c.flip_send; // F1
    let sender_ether = c.ether_tx + c.copy_cost(116); // E1
    let seq_ether_rx = c.ether_rx + c.copy_cost(116); // E2a (+ flip demux charged with rx)
    let seq_flip_rx = c.flip_rx; // F2a
    let seq_group = c.group_seq; // G2
    let seq_flip_tx = c.flip_send; // F2b
    let seq_ether_tx = c.ether_tx + c.copy_cost(116) + 2 * c.mcast_per_dest; // E2b
    let rcv_ether = c.ether_rx + c.copy_cost(116); // E3
    let rcv_flip = c.flip_rx; // F3
    let rcv_group = c.group_rx; // G3
    let rcv_user = c.user_wakeup; // U3 (context switch dominates)

    let mut layer_series = Series::new("model (us)");
    let steps: [(&str, u64); 15] = [
        ("U1", sender_user),
        ("G1", sender_group),
        ("F1", sender_flip),
        ("E1", sender_ether),
        ("wire", wire),
        ("E2a", seq_ether_rx),
        ("F2a", seq_flip_rx),
        ("G2", seq_group),
        ("F2b", seq_flip_tx),
        ("E2b", seq_ether_tx),
        ("wire2", wire),
        ("E3", rcv_ether),
        ("F3", rcv_flip),
        ("G3", rcv_group),
        ("U3", rcv_user),
    ];
    for (i, (_, us)) in steps.iter().enumerate() {
        layer_series.push(i as f64, *us as f64);
    }
    let model_total: u64 = steps.iter().map(|(_, us)| *us).sum();
    let group_total = sender_group + seq_group + rcv_group;

    // End-to-end measurement of the same configuration in the full
    // simulator (includes queueing the model table cannot show).
    let measured_us = measure_delay(2, 0, Method::Pb, 0, scale, 31);

    Figure {
        id: "table3",
        title: "Critical path of one 0-byte SendToGroup (group of 2, PB) — \
                steps U1 G1 F1 E1 wire E2a F2a G2 F2b E2b wire E3 F3 G3 U3",
        x_label: "step#",
        y_label: "us in layer",
        series: vec![layer_series],
        anchors: vec![
            Anchor {
                what: "critical-path total".into(),
                paper: 2740.0,
                measured: model_total as f64,
                unit: "us",
            },
            Anchor {
                what: "group protocol layers (G1+G2+G3)".into(),
                paper: 740.0,
                measured: group_total as f64,
                unit: "us",
            },
            Anchor {
                what: "measured end-to-end sender delay".into(),
                paper: 2700.0,
                measured: measured_us,
                unit: "us",
            },
        ],
    }
}
