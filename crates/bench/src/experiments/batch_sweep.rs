//! The `batch_sweep` experiment: sequencer batching × group size.
//!
//! This sweep goes *beyond the paper*: §5 identifies the sequencer's
//! per-message work (a stamp, a multicast, an interrupt per receiver)
//! as the throughput ceiling (Figs. 4–6, 8) and leaves amortization on
//! the table. With `BatchPolicy::On` the sequencer coalesces up to
//! `max_batch` messages per `BcastBatch` frame and senders pipeline a
//! window of requests into `BcastReqBatch` frames (DESIGN.md §6), so
//! the per-packet costs — interrupts, driver work, multicast fan-out —
//! are paid once per batch instead of once per message. The curve to
//! expect: "batch off" reproduces Fig. 4's ≈815 msg/s plateau; each
//! doubling of the batch size lifts the plateau until the per-message
//! residue (stamping, delivery context switches) dominates.

use amoeba_core::{GroupConfig, Method};
use amoeba_sim::Series;

use super::measure_throughput_cfg;
use crate::report::{Anchor, Figure, Scale};

/// Group sizes swept on the x-axis (group size = #senders, as in the
/// paper's throughput figures).
const GROUPS: [usize; 4] = [2, 4, 8, 12];

/// Batch sizes swept (0 = `BatchPolicy::Off`). The pipelining window
/// follows the batch size (`GroupConfig::with_batching`).
const BATCHES: [usize; 4] = [0, 4, 8, 16];

/// The acceptance bar: batching must at least double the zero-byte
/// peak at group size 8 (ISSUE 2 / ROADMAP "heavy traffic").
const TARGET_SPEEDUP: f64 = 2.0;

fn cfg_for(batch: usize) -> GroupConfig {
    // Pin PB so the sweep isolates batching (Dynamic picks PB at these
    // sizes anyway; BB interacts via accept-batching, covered by tests).
    let base =
        if batch == 0 { GroupConfig::default() } else { GroupConfig::with_batching(batch) };
    GroupConfig { method: Method::Pb, ..base }
}

/// Throughput for 0-byte messages, batching off vs. increasing batch
/// sizes, group size = #senders.
pub fn batch_sweep(scale: Scale) -> Figure {
    let mut series = Vec::new();
    let mut off_at_8 = 0.0f64;
    let mut best_on_at_8 = 0.0f64;
    for &batch in &BATCHES {
        let label =
            if batch == 0 { "batch off".to_string() } else { format!("batch {batch}") };
        let mut s = Series::new(label);
        for &g in &GROUPS {
            let seed = 4200 + (batch * 31 + g) as u64;
            let rate = measure_throughput_cfg(g, 0, cfg_for(batch), scale, seed);
            if g == 8 {
                if batch == 0 {
                    off_at_8 = rate;
                } else {
                    best_on_at_8 = best_on_at_8.max(rate);
                }
            }
            s.push(g as f64, rate);
        }
        series.push(s);
    }
    let speedup = if off_at_8 > 0.0 { best_on_at_8 / off_at_8 } else { 0.0 };
    Figure {
        id: "batch_sweep",
        title: "Throughput with sequencer batching (0-byte, PB, group size = #senders)",
        x_label: "group size",
        y_label: "broadcasts/second",
        anchors: vec![
            Anchor {
                what: "unbatched peak reproduces Fig. 4 (sequencer-bound)".into(),
                paper: 815.0,
                measured: series[0].y_max().unwrap_or(0.0),
                unit: "msg/s",
            },
            Anchor {
                what: "best batched / unbatched throughput at group 8".into(),
                paper: TARGET_SPEEDUP,
                measured: speedup,
                unit: "ratio",
            },
        ],
        series,
    }
}
