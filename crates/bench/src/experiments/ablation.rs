//! Ablation: the PB/BB trade-off and the dynamic switch.
//!
//! The paper's kernel "switches dynamically between the PB and BB
//! methods depending on message size" (§3.1) but never plots the
//! crossover. This ablation does: delay vs. payload size under PB
//! pinned, BB pinned, and the dynamic switch — showing that PB wins
//! for messages that fit one packet (one interrupt per receiver
//! matters more than 2n bytes of bandwidth) while BB wins beyond it,
//! and that the dynamic policy tracks the winner on both sides.

use amoeba_core::Method;
use amoeba_sim::Series;

use super::measure_delay;
use crate::report::{Anchor, Figure, Scale};

/// Payload sizes bracketing the one-fragment boundary (1430 bytes of
/// payload above the full header stack).
const SIZES: [u32; 7] = [0, 256, 1_024, 1_430, 2_048, 4_096, 8_000];

/// The ablation figure: three policies, one curve each.
pub fn ablation_method_switch(scale: Scale) -> Figure {
    let members = 4;
    let policies: [(&str, Method); 3] = [
        ("PB pinned", Method::Pb),
        ("BB pinned", Method::Bb),
        ("dynamic", Method::default()),
    ];
    let mut series = Vec::new();
    for (label, method) in policies {
        let mut s = Series::new(label);
        for &size in &SIZES {
            let us = measure_delay(members, size, method, 0, scale, 950 + u64::from(size));
            s.push(f64::from(size), us / 1_000.0);
        }
        series.push(s);
    }
    // The dynamic policy should never be meaningfully worse than the
    // better of the two pinned methods, at either extreme.
    let dyn_small = series[2].y_at(0.0).expect("dynamic at 0B");
    let pb_small = series[0].y_at(0.0).expect("pb at 0B");
    let dyn_big = series[2].y_at(8_000.0).expect("dynamic at 8KB");
    let bb_big = series[1].y_at(8_000.0).expect("bb at 8KB");
    Figure {
        id: "ablation",
        title: "Ablation: PB vs BB vs the kernel's dynamic switch (group of 4)",
        x_label: "payload bytes",
        y_label: "ms per SendToGroup",
        anchors: vec![
            Anchor {
                what: "dynamic tracks PB on small messages (ratio)".into(),
                paper: 1.0,
                measured: dyn_small / pb_small,
                unit: "ratio",
            },
            Anchor {
                what: "dynamic tracks BB on large messages (ratio)".into(),
                paper: 1.0,
                measured: dyn_big / bb_big,
                unit: "ratio",
            },
        ],
        series,
    }
}
