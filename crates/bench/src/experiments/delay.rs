//! Delay experiments: Figures 1 (PB), 3 (BB) and 7 (resilience).

use amoeba_core::Method;
use amoeba_sim::Series;

use super::{measure_delay, SIZES};
use crate::report::{Anchor, Figure, Scale};

/// Group sizes swept on the x-axis (paper: 2–30 members).
const MEMBER_SWEEP: [usize; 7] = [2, 5, 10, 15, 20, 25, 30];

fn delay_sweep(method: Method, scale: Scale, seed: u64) -> Vec<Series> {
    SIZES
        .iter()
        .map(|&size| {
            let mut s = Series::new(format!("{size} bytes"));
            for &members in &MEMBER_SWEEP {
                let us = measure_delay(members, size, method, 0, scale, seed + members as u64);
                s.push(members as f64, us / 1_000.0); // report ms
            }
            s
        })
        .collect()
}

/// Figure 1: "Delay for 1 sender using PB method (r = 0)".
///
/// Paper anchors: 2.7 ms for a 0-byte message to a group of 2; 2.8 ms
/// to 30 members (≈ 4 µs per added member); an 8000-byte message adds
/// roughly 20 ms because the payload crosses the network twice.
pub fn fig1_delay_pb(scale: Scale) -> Figure {
    let series = delay_sweep(Method::Pb, scale, 100);
    let d2 = series[0].y_at(2.0).expect("0-byte, 2 members");
    let d30 = series[0].y_at(30.0).expect("0-byte, 30 members");
    let d8k_2 = series[4].y_at(2.0).expect("8000-byte, 2 members");
    Figure {
        id: "fig1",
        title: "Delay for 1 sender using PB method (r = 0)",
        x_label: "members",
        y_label: "ms per SendToGroup",
        anchors: vec![
            Anchor { what: "0-byte delay, group of 2".into(), paper: 2.7, measured: d2, unit: "ms" },
            Anchor { what: "0-byte delay, group of 30".into(), paper: 2.8, measured: d30, unit: "ms" },
            Anchor {
                what: "8000-byte penalty over 0-byte (PB: 2n on the wire)".into(),
                paper: 20.0,
                measured: d8k_2 - d2,
                unit: "ms",
            },
        ],
        series,
    }
}

/// Figure 3: "Delay for 1 sender using BB method (r = 0)".
///
/// Paper: 0-byte results are similar to PB; large messages are
/// "dramatically better" because the payload crosses the network once.
pub fn fig3_delay_bb(scale: Scale) -> Figure {
    let series = delay_sweep(Method::Bb, scale, 300);
    let d0 = series[0].y_at(2.0).expect("0-byte");
    let d8k = series[4].y_at(2.0).expect("8000-byte");
    // PB reference for the improvement anchor.
    let pb_8k = measure_delay(2, 8_000, Method::Pb, 0, scale, 399) / 1_000.0;
    Figure {
        id: "fig3",
        title: "Delay for 1 sender using BB method (r = 0)",
        x_label: "members",
        y_label: "ms per SendToGroup",
        anchors: vec![
            Anchor { what: "0-byte delay, group of 2 (≈ PB)".into(), paper: 2.7, measured: d0, unit: "ms" },
            Anchor {
                what: "8000-byte BB vs PB delay (payload crosses wire once)".into(),
                paper: pb_8k / 2.0, // wire cost halves; processing does not: expect well below PB
                measured: d8k,
                unit: "ms",
            },
        ],
        series,
    }
}

/// Figure 7: "Delay for 1 sender with different r's using the PB
/// method. Group size is equal to r + 1."
///
/// Paper anchors: 4.2 ms at r = 1 (group of 2); 12.9 ms at r = 15
/// (group of 16); each acknowledgement adds ≈ 600 µs; 3 + r FLIP
/// messages per broadcast.
pub fn fig7_delay_resilience(scale: Scale) -> Figure {
    let rs: [u32; 6] = [1, 2, 4, 8, 12, 15];
    let sizes: [u32; 3] = [0, 1024, 2048];
    let mut series = Vec::new();
    for &size in &sizes {
        let mut s = Series::new(format!("{size} bytes"));
        for &r in &rs {
            let members = r as usize + 1;
            let us = measure_delay(members, size, Method::Pb, r, scale, 700 + u64::from(r));
            s.push(f64::from(r), us / 1_000.0);
        }
        series.push(s);
    }
    let d1 = series[0].y_at(1.0).expect("r=1");
    let d15 = series[0].y_at(15.0).expect("r=15");
    Figure {
        id: "fig7",
        title: "Delay for 1 sender with resilience r (PB), group size r+1",
        x_label: "resilience r",
        y_label: "ms per SendToGroup",
        anchors: vec![
            Anchor { what: "0-byte delay at r=1 (group of 2)".into(), paper: 4.2, measured: d1, unit: "ms" },
            Anchor { what: "0-byte delay at r=15 (group of 16)".into(), paper: 12.9, measured: d15, unit: "ms" },
            Anchor {
                what: "delay added per acknowledgement".into(),
                paper: 0.6,
                measured: (d15 - d1) / 14.0,
                unit: "ms",
            },
        ],
        series,
    }
}
