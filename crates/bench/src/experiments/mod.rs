//! The experiments, one per table/figure of the paper's §4.
//!
//! Shared conventions (from the paper): all members on one quiet
//! 10 Mbit/s Ethernet; message sizes 0, 1024, 2048, 4096 and 8000
//! bytes (8000 is the implementation's cap, pending multicast flow
//! control); history buffer of 128 messages; failure-free runs;
//! the sender of delay experiments runs on a different processor than
//! the sequencer.

mod ablation;
mod batch_sweep;
mod delay;
mod parallel;
mod rpc;
mod table3;
mod throughput;

pub use ablation::ablation_method_switch;
pub use batch_sweep::batch_sweep;
pub use delay::{fig1_delay_pb, fig3_delay_bb, fig7_delay_resilience};
pub use parallel::fig6_parallel_groups;
pub use rpc::rpc_baseline;
pub use table3::table3_breakdown;
pub use throughput::{fig4_throughput_pb, fig5_throughput_bb, fig8_throughput_resilience};

use amoeba_core::{GroupConfig, GroupId, Method};
use amoeba_kernel::{CostModel, SimWorld, Workload};
use amoeba_sim::SimDuration;

use crate::report::{Figure, Scale};

/// The paper's message-size sweep.
pub const SIZES: [u32; 5] = [0, 1024, 2048, 4096, 8000];

/// Builds one group of `members` nodes (node 0 creates and sequences;
/// the rest join) and waits for formation.
pub(crate) fn build_group(members: usize, config: &GroupConfig, seed: u64) -> SimWorld {
    let mut w = SimWorld::new(CostModel::mc68030_ether10(), seed);
    let group = GroupId(1);
    for _ in 0..members {
        w.add_node();
    }
    w.create_group(0, group, config.clone());
    for n in 1..members {
        w.join_group(n, group, config.clone());
    }
    w.run_until_ready();
    w
}

/// Group configuration for an experiment: pinned method, resilience r.
pub(crate) fn config(method: Method, resilience: u32) -> GroupConfig {
    GroupConfig { method, resilience, ..GroupConfig::default() }
}

/// Measures mean `SendToGroup` delay (µs): one sender (the last node,
/// which is never the sequencer for groups ≥ 2), `scale.sends()`
/// messages of `size` bytes, everyone else receiving.
pub(crate) fn measure_delay(
    members: usize,
    size: u32,
    method: Method,
    resilience: u32,
    scale: Scale,
    seed: u64,
) -> f64 {
    let mut w = build_group(members, &config(method, resilience), seed);
    let sender = members - 1;
    let sends = scale.sends();
    w.set_workload(sender, Workload::Sender { size, remaining: sends });
    w.kick();
    // Generous budget: even 8000-byte resilient sends stay well under
    // 100 ms each.
    w.run_for(SimDuration::from_micros(sends * 100_000 + 1_000_000));
    assert_eq!(
        w.sim.world.metrics.sends_ok.get(),
        sends,
        "delay run must complete all sends (members={members} size={size} r={resilience})"
    );
    // Median: the paper measured 10,000 repetitions on an "almost quiet"
    // network, so its reported delays carry no retransmission-timeout
    // outliers; the median removes the rare collision-cascade drop that
    // our (busier) simulated formation traffic can leave behind.
    w.sim.world.metrics.send_delay_us.median()
}

/// Measures group throughput (completed broadcasts/second): `senders`
/// members all sending `size`-byte messages continuously (the paper's
/// "all members of a given group continuously call SendToGroup").
pub(crate) fn measure_throughput(
    senders: usize,
    size: u32,
    method: Method,
    resilience: u32,
    scale: Scale,
    seed: u64,
) -> f64 {
    measure_throughput_cfg(senders, size, config(method, resilience), scale, seed)
}

/// [`measure_throughput`] with a fully explicit configuration (the
/// batching experiments sweep knobs beyond method/resilience).
pub(crate) fn measure_throughput_cfg(
    senders: usize,
    size: u32,
    cfg: GroupConfig,
    scale: Scale,
    seed: u64,
) -> f64 {
    let mut w = build_group(senders, &cfg, seed);
    for n in 0..senders {
        w.set_workload(n, Workload::Sender { size, remaining: u64::MAX });
    }
    w.kick();
    w.run_for(SimDuration::from_micros(scale.warmup_us()));
    let before = w.snapshot_sends();
    w.run_for(SimDuration::from_micros(scale.window_us()));
    let after = w.snapshot_sends();
    (after - before) as f64 / (scale.window_us() as f64 / 1_000_000.0)
}

/// Canonical experiment ids, in paper order — the single source the
/// `figures` binary and [`all`] both iterate, so a newly registered
/// experiment cannot be silently missing from the default run or the
/// archived bench JSON.
pub const IDS: [&str; 11] = [
    "table3", "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "rpc", "ablation",
    "batch_sweep",
];

/// Every experiment, in paper order.
pub fn all(scale: Scale) -> Vec<Figure> {
    IDS.iter().map(|id| by_id(id, scale).expect("IDS entries are registered")).collect()
}

/// Looks up experiments by id ("fig1", …, "table3", "rpc").
pub fn by_id(id: &str, scale: Scale) -> Option<Figure> {
    Some(match id {
        "table3" | "fig2" => table3_breakdown(scale),
        "fig1" => fig1_delay_pb(scale),
        "fig3" => fig3_delay_bb(scale),
        "fig4" => fig4_throughput_pb(scale),
        "fig5" => fig5_throughput_bb(scale),
        "fig6" => fig6_parallel_groups(scale),
        "fig7" => fig7_delay_resilience(scale),
        "fig8" => fig8_throughput_resilience(scale),
        "rpc" => rpc_baseline(scale),
        "ablation" => ablation_method_switch(scale),
        "batch_sweep" | "batch" => batch_sweep(scale),
        _ => return None,
    })
}
