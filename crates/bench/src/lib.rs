//! The evaluation harness: regenerates every table and figure of
//! Kaashoek & Tanenbaum's ICDCS '96 evaluation of the Amoeba group
//! communication system.
//!
//! Each experiment in [`experiments`] builds a [`amoeba_kernel::SimWorld`]
//! matching the paper's setup (30 MC68030 hosts on a 10 Mbit/s
//! Ethernet, 128-entry history buffer, quiet network, failure-free
//! runs), sweeps the paper's parameters, and returns a [`report::Figure`]
//! whose rows print next to the paper's reported anchors.
//!
//! Run everything:
//!
//! ```text
//! cargo run -p amoeba-bench --bin figures --release            # full sweep
//! cargo run -p amoeba-bench --bin figures --release -- --quick # CI-sized
//! cargo run -p amoeba-bench --bin figures --release -- fig4 fig6
//! ```
//!
//! The absolute microsecond numbers come from the calibrated
//! [`amoeba_kernel::CostModel`]; the *claims under test* are the shapes
//! (see `DESIGN.md` §4 and `EXPERIMENTS.md`). The `batch_sweep`
//! experiment goes beyond the paper, measuring the batching layer of
//! `DESIGN.md` §6 against the ≥ 2× throughput bar.

pub mod experiments;
pub mod report;

pub use report::{Figure, Scale};
